"""The per-run observability bundle every cluster and engine shares.

One :class:`RunObservation` travels through a whole experiment cell:
``Engine.run`` creates it (or accepts a caller's), hands it to the
:class:`~repro.cluster.Cluster` so the fabric's shuffles, computes, and
barriers land in the same span tree, and attaches it to the
:class:`~repro.engines.base.RunResult` so callers can journal or export
the run afterwards.
"""

from __future__ import annotations

from typing import Dict, Optional

from .journal import Journal, build_journal
from .metrics import MetricsRegistry
from .spans import Tracer

__all__ = ["RunObservation"]


class RunObservation:
    """Tracer + metrics registry + run metadata for one experiment cell."""

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.tracer = tracer if tracer is not None else Tracer()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: filled in by ``Engine.run`` when the run finishes
        self.meta: Dict[str, object] = {}

    def journal(self) -> Journal:
        """The run's canonical event stream (meta + spans + metrics)."""
        return build_journal(self.meta, self.tracer, self.metrics)

    def __repr__(self) -> str:
        return (
            f"RunObservation({len(self.tracer.spans)} spans, "
            f"{len(self.metrics)} metrics)"
        )
