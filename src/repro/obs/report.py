"""Cross-run perf & cost reports and the regression gate.

The analysis surface behind ``repro report``: load any mix of run
journals, grid trace directories (``repro grid --trace``), bench
records (``BENCH_grid.json`` / ``BENCH_history.jsonl``), and legacy
runs-logs; aggregate spans flamegraph-style (self time per span name
per engine); render cost-and-time comparison tables; and *diff* two
inputs with configurable relative thresholds so CI can gate on "did
this PR make anything slower or more expensive".

Everything here is a pure function of the input bytes: loading sorts
directory listings, rendering uses fixed float formats, and diffing
walks keys in first-input order — the same inputs always produce
byte-identical output (the property the CI gate and the tests pin).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .cost import cost_event_from_events
from .export import _self_times
from .journal import Journal

__all__ = [
    "ReportError",
    "RunRow",
    "SchedulerRow",
    "ServerRow",
    "PerfSource",
    "classify_path",
    "load_source",
    "render_report",
    "hot_span_rows",
    "DiffEntry",
    "PerfDiff",
    "diff_sources",
]

KIND_JOURNAL = "journal"
KIND_SCHEDULER = "scheduler-journal"
KIND_SERVER = "server-journal"
KIND_TRACE_DIR = "trace-dir"
KIND_BENCH = "bench"
KIND_BENCH_HISTORY = "bench-history"
KIND_LEGACY_LOG = "legacy-log"

#: the grid-level cost counters the executor folds into _scheduler.jsonl
_SCHEDULER_COST_FIELDS = (
    "dollars", "machine_seconds", "memory_gb_hours", "gb_shuffled",
    "recovery_seconds", "answers",
)


class ReportError(ValueError):
    """An input file is not a journal, trace dir, bench record, or log."""


# -- input classification ---------------------------------------------------

def _classify_event(event: dict, source: str) -> str:
    if event.get("bench"):
        return KIND_BENCH_HISTORY
    if event.get("type") == "meta":
        if event.get("kind") == "scheduler":
            return KIND_SCHEDULER
        if event.get("kind") == "server":
            return KIND_SERVER
        return KIND_JOURNAL
    if "system" in event and "workload" in event:
        return KIND_LEGACY_LOG
    raise ReportError(
        f"{source}: neither a run journal, a scheduler journal, a bench "
        f"record, nor a runs-log"
    )


def classify_path(path: Union[str, Path]) -> str:
    """What kind of input a path is (see the ``KIND_*`` constants)."""
    p = Path(path)
    if p.is_dir():
        return KIND_TRACE_DIR
    try:
        text = p.read_text(encoding="ascii")
    except OSError as exc:
        raise ReportError(f"cannot read {path}: {exc}") from exc
    except UnicodeDecodeError as exc:
        raise ReportError(f"{path} is not a text input: {exc}") from exc
    stripped = text.strip()
    if not stripped:
        raise ReportError(f"{path} is empty")
    try:
        whole = json.loads(stripped)
    except json.JSONDecodeError:
        whole = None
    if isinstance(whole, dict):
        if whole.get("bench"):
            return KIND_BENCH
        kind = _classify_event(whole, str(path))
        return kind if kind != KIND_BENCH_HISTORY else KIND_BENCH
    first_line = stripped.splitlines()[0].strip()
    try:
        first = json.loads(first_line)
    except json.JSONDecodeError as exc:
        raise ReportError(f"{path}:1: not JSON ({exc.msg})") from exc
    if not isinstance(first, dict):
        raise ReportError(f"{path}:1: expected a JSON object per line")
    return _classify_event(first, str(path))


# -- data model -------------------------------------------------------------

@dataclass
class RunRow:
    """One run's report-facing summary (from a journal or a log record)."""

    key: str
    system: str
    workload: str
    dataset: str
    machines: int
    status: str
    total_seconds: float
    iterations: int
    #: the journal's cost event (or one computed on the fly); ``None``
    #: for legacy log records, which carry no journal to bill from
    cost: Optional[dict]
    spans: List[dict] = field(default_factory=list)


@dataclass
class SchedulerRow:
    """One ``_scheduler.jsonl``: cache/retry counters + the grid's bill."""

    cells: int
    cache_hits: int
    executed: int
    retries: int
    jobs: int
    cost: Dict[str, float]


@dataclass
class ServerRow:
    """One ``_server.jsonl``: a serve daemon's lifetime aggregates."""

    jobs: int
    rejected: int
    shed: int
    deadline_expired: int
    cells: int
    cache_hits: int
    executed: int
    evictions: int
    cache_hit_rate: float
    dollars: float
    clients: int
    p50_latency: float
    p99_latency: float
    per_client: Dict[str, Dict[str, float]]


@dataclass
class PerfSource:
    """Everything one input path contributed to the report."""

    label: str
    runs: List[RunRow] = field(default_factory=list)
    schedulers: List[SchedulerRow] = field(default_factory=list)
    servers: List[ServerRow] = field(default_factory=list)
    benches: List[dict] = field(default_factory=list)


# -- loading ----------------------------------------------------------------

def _run_row_from_journal(journal: Journal) -> RunRow:
    meta = journal.meta
    cost = journal.cost()
    if cost is None:
        # pre-cost journals (older traces) are still priced on the fly
        cost = cost_event_from_events(journal.events)
    return RunRow(
        key="",
        system=str(meta.get("system", "?")),
        workload=str(meta.get("workload", "?")),
        dataset=str(meta.get("dataset", "?")),
        machines=int(meta.get("machines", 0)),  # type: ignore[arg-type]
        status=str(meta.get("status", "?")),
        total_seconds=float(meta.get("total_time", 0.0)),  # type: ignore[arg-type]
        iterations=int(meta.get("iterations", 0)),  # type: ignore[arg-type]
        cost=cost,
        spans=journal.spans(),
    )


def _run_row_from_record(record: dict) -> RunRow:
    total = (
        float(record.get("load_time", 0.0))
        + float(record.get("execute_time", 0.0))
        + float(record.get("save_time", 0.0))
        + float(record.get("overhead_time", 0.0))
    )
    failure = record.get("failure")
    return RunRow(
        key="",
        system=str(record.get("system", "?")),
        workload=str(record.get("workload", "?")),
        dataset=str(record.get("dataset", "?")),
        machines=int(record.get("cluster_size", 0)),
        status=str(failure) if failure else "ok",
        total_seconds=total,
        iterations=int(record.get("iterations", 0)),
        cost=None,
    )


def _scheduler_row(journal: Journal) -> SchedulerRow:
    meta = journal.meta
    return SchedulerRow(
        cells=int(meta.get("cells", 0)),  # type: ignore[arg-type]
        cache_hits=int(meta.get("cache_hits", 0)),  # type: ignore[arg-type]
        executed=int(meta.get("executed", 0)),  # type: ignore[arg-type]
        retries=int(meta.get("retries", 0)),  # type: ignore[arg-type]
        jobs=int(meta.get("jobs", 0)),  # type: ignore[arg-type]
        cost={
            name: journal.scalar(f"cost.{name}")
            for name in _SCHEDULER_COST_FIELDS
        },
    )


def _server_row(journal: Journal) -> ServerRow:
    meta = journal.meta
    per_client = meta.get("per_client")
    return ServerRow(
        jobs=int(meta.get("jobs", 0)),  # type: ignore[arg-type]
        rejected=int(meta.get("rejected", 0)),  # type: ignore[arg-type]
        shed=int(meta.get("shed", 0)),  # type: ignore[arg-type]
        deadline_expired=int(meta.get("deadline_expired", 0)),  # type: ignore[arg-type]
        cells=int(meta.get("cells", 0)),  # type: ignore[arg-type]
        cache_hits=int(meta.get("cache_hits", 0)),  # type: ignore[arg-type]
        executed=int(meta.get("executed", 0)),  # type: ignore[arg-type]
        evictions=int(meta.get("evictions", 0)),  # type: ignore[arg-type]
        cache_hit_rate=float(meta.get("cache_hit_rate", 0.0)),  # type: ignore[arg-type]
        dollars=float(meta.get("dollars", 0.0)),  # type: ignore[arg-type]
        clients=int(meta.get("clients", 0)),  # type: ignore[arg-type]
        p50_latency=float(meta.get("p50_latency", 0.0)),  # type: ignore[arg-type]
        p99_latency=float(meta.get("p99_latency", 0.0)),  # type: ignore[arg-type]
        per_client=per_client if isinstance(per_client, dict) else {},
    )


def _assign_keys(rows: List[RunRow]) -> None:
    """Stable, unique run keys: coordinates plus a #n dedup suffix."""
    seen: Dict[str, int] = {}
    for row in rows:
        base = f"{row.system} {row.workload}/{row.dataset}@{row.machines}"
        n = seen.get(base, 0)
        seen[base] = n + 1
        row.key = base if n == 0 else f"{base}#{n + 1}"


def _jsonl_events(text: str, source: str) -> List[dict]:
    events = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ReportError(f"{source}:{lineno}: not JSON ({exc.msg})") from exc
        if not isinstance(event, dict):
            raise ReportError(f"{source}:{lineno}: expected a JSON object")
        events.append(event)
    return events


def load_source(path: Union[str, Path]) -> PerfSource:
    """Load one input path into its report-ready form."""
    kind = classify_path(path)
    p = Path(path)
    source = PerfSource(label=str(path))
    if kind == KIND_TRACE_DIR:
        files = sorted(x for x in p.iterdir() if x.name.endswith(".jsonl"))
        if not files:
            raise ReportError(f"{path}: no .jsonl journals in directory")
        for file in files:
            journal = Journal.read(file)
            if journal.meta.get("kind") == "scheduler":
                source.schedulers.append(_scheduler_row(journal))
            elif journal.meta.get("kind") == "server":
                source.servers.append(_server_row(journal))
            else:
                source.runs.append(_run_row_from_journal(journal))
    elif kind == KIND_JOURNAL:
        source.runs.append(_run_row_from_journal(Journal.read(p)))
    elif kind == KIND_SCHEDULER:
        source.schedulers.append(_scheduler_row(Journal.read(p)))
    elif kind == KIND_SERVER:
        source.servers.append(_server_row(Journal.read(p)))
    elif kind == KIND_BENCH:
        source.benches.append(json.loads(p.read_text(encoding="ascii")))
    elif kind == KIND_BENCH_HISTORY:
        source.benches.extend(
            _jsonl_events(p.read_text(encoding="ascii"), str(path))
        )
    else:  # legacy runs-log
        for record in _jsonl_events(p.read_text(encoding="ascii"), str(path)):
            source.runs.append(_run_row_from_record(record))
    _assign_keys(source.runs)
    return source


# -- span aggregation -------------------------------------------------------

def hot_span_rows(
    runs: Sequence[RunRow], top: int = 10
) -> List[Tuple[str, str, int, float, float, float]]:
    """Flamegraph-style (engine, span, count, self_s, share, total_s).

    Self time is summed per (engine, span label) across every run;
    rows rank by self time (the flamegraph's widest leaves first) and
    ``share`` is each row's fraction of all runs' self time.
    """
    groups: Dict[Tuple[str, str], Tuple[float, float, int]] = {}
    grand = 0.0
    for row in runs:
        selfs = _self_times(row.spans)
        for span in row.spans:
            label = span["name"] + (
                f" [{span['cat']}]" if span.get("cat") else ""
            )
            key = (row.system, label)
            total, self_time, count = groups.get(key, (0.0, 0.0, 0))
            groups[key] = (
                total + span["dur"], self_time + selfs[span["id"]], count + 1
            )
            grand += selfs[span["id"]]
    ranked = sorted(groups.items(), key=lambda kv: (-kv[1][1], kv[0]))
    return [
        (system, label, count, self_time,
         self_time / grand if grand > 0 else 0.0, total)
        for (system, label), (total, self_time, count) in ranked[:top]
    ]


# -- rendering --------------------------------------------------------------

def _table(header: Sequence[str], rows: Sequence[Sequence[str]]) -> List[str]:
    lines = [
        "| " + " | ".join(header) + " |",
        "|" + "|".join("---" for _ in header) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(row) + " |")
    return lines


def _cost_cell(cost: Optional[dict], key: str, fmt: str) -> str:
    if cost is None:
        return "-"
    value = cost.get(key)
    if value is None:
        return "-"
    return format(float(value), fmt)


def _render_runs(runs: Sequence[RunRow]) -> List[str]:
    header = ("run", "status", "total s", "mach-s", "GB shuf",
              "mem GB-h", "recov s", "$", "$/answer")
    rows = []
    totals = {"seconds": 0.0, "machine_seconds": 0.0, "gb": 0.0,
              "gbh": 0.0, "recovery": 0.0, "dollars": 0.0, "answers": 0.0}
    priced = 0
    for row in runs:
        cost = row.cost
        rows.append((
            row.key,
            row.status,
            f"{row.total_seconds:.1f}",
            _cost_cell(cost, "machine_seconds", ".0f"),
            (_cost_cell(cost, "bytes_shuffled", ".3e")
             if cost is None else f"{cost['bytes_shuffled'] / 1e9:.2f}"),
            _cost_cell(cost, "memory_gb_hours", ".3f"),
            _cost_cell(cost, "recovery_seconds", ".1f"),
            _cost_cell(cost, "dollars", ".4f"),
            _cost_cell(cost, "dollars_per_answer", ".4f"),
        ))
        totals["seconds"] += row.total_seconds
        if cost is not None:
            priced += 1
            totals["machine_seconds"] += float(cost["machine_seconds"])
            totals["gb"] += float(cost["bytes_shuffled"]) / 1e9
            totals["gbh"] += float(cost["memory_gb_hours"])
            totals["recovery"] += float(cost["recovery_seconds"])
            totals["dollars"] += float(cost["dollars"])
            totals["answers"] += float(cost["answers"])
    if priced:
        per_answer = (
            f"{totals['dollars'] / totals['answers']:.4f}"
            if totals["answers"] else "-"
        )
        rows.append((
            f"**total ({len(runs)} runs)**", "",
            f"{totals['seconds']:.1f}",
            f"{totals['machine_seconds']:.0f}",
            f"{totals['gb']:.2f}",
            f"{totals['gbh']:.3f}",
            f"{totals['recovery']:.1f}",
            f"{totals['dollars']:.4f}",
            per_answer,
        ))
    return _table(header, rows)


def _render_hot_spans(runs: Sequence[RunRow], top: int) -> List[str]:
    ranked = hot_span_rows(runs, top)
    if not ranked:
        return []
    lines = [f"### Hot spans (top {len(ranked)} by self time, simulated)", ""]
    rows = [
        (system, label, str(count), f"{self_time:.1f}",
         f"{share * 100:.1f}%", f"{total:.1f}")
        for system, label, count, self_time, share, total in ranked
    ]
    lines += _table(
        ("engine", "span", "count", "self s", "share", "total s"), rows
    )
    return lines


def _render_schedulers(schedulers: Sequence[SchedulerRow]) -> List[str]:
    lines = ["### Scheduler", ""]
    for row in schedulers:
        lines.append(
            f"- {row.cells} cells · {row.cache_hits} cached · "
            f"{row.executed} executed · {row.retries} retries · "
            f"jobs={row.jobs}"
        )
        cost = row.cost
        if cost.get("dollars"):
            answers = cost.get("answers", 0.0)
            per = (f" · ${cost['dollars'] / answers:.4f}/answer"
                   if answers else "")
            lines.append(
                f"  grid cost ${cost['dollars']:.4f} · "
                f"{cost['machine_seconds']:.0f} machine-s · "
                f"{cost['gb_shuffled']:.2f} GB shuffled · "
                f"{cost['memory_gb_hours']:.3f} mem GB-h · "
                f"{answers:.0f} answers{per}"
            )
    return lines


def _render_servers(servers: Sequence[ServerRow]) -> List[str]:
    lines = ["### Serving", ""]
    for row in servers:
        lines.append(
            f"- {row.jobs} jobs from {row.clients} clients · "
            f"{row.cells} cells ({row.cache_hits} cached, "
            f"{row.executed} executed, hit-rate "
            f"{row.cache_hit_rate:.2f}) · {row.rejected} rejected · "
            f"p50 {row.p50_latency * 1000:.0f} ms · "
            f"p99 {row.p99_latency * 1000:.0f} ms · "
            f"${row.dollars:.4f}"
        )
        # resilience counters only earn a line once they fire
        pressure = []
        if row.shed:
            pressure.append(f"{row.shed} shed under queue pressure")
        if row.deadline_expired:
            pressure.append(f"{row.deadline_expired} deadline-expired")
        if row.evictions:
            pressure.append(f"{row.evictions} cache evictions")
        if pressure:
            lines.append("  " + " · ".join(pressure))
    billed = [row for row in servers if row.per_client]
    if billed:
        lines += [""]
        rows = []
        for i, row in enumerate(billed):
            for client in sorted(row.per_client):
                account = row.per_client[client]
                rows.append((
                    str(i) if len(billed) > 1 else "",
                    client,
                    f"{float(account.get('jobs', 0.0)):.0f}",
                    f"{float(account.get('cells', 0.0)):.0f}",
                    f"{float(account.get('dollars', 0.0)):.4f}",
                ))
        header = ("#", "client", "jobs", "cells", "$")
        if len(billed) == 1:
            header = header[1:]
            rows = [row[1:] for row in rows]
        lines += _table(header, rows)
    return lines


def _bench_field(record: dict, name: str) -> Optional[float]:
    value = record.get(name)
    if value is None and name == "speedup_warm":
        value = record.get("speedup_warm_cache")
    return None if value is None else float(value)


def _render_serve_benches(benches: Sequence[dict]) -> List[str]:
    lines = ["### Serve bench records", ""]
    header = ("#", "clients", "jobs", "cells", "hit-rate", "p50 ms",
              "p99 ms", "$", "bit-equal")
    rows = []
    for i, record in enumerate(benches):
        def ms(name: str) -> str:
            value = record.get(name)
            return "-" if value is None else f"{float(value) * 1000:.0f}"

        dollars = record.get("cost_dollars")
        hit_rate = record.get("cache_hit_rate")
        rows.append((
            str(i),
            str(record.get("clients", "-")),
            str(record.get("jobs", "-")),
            str(record.get("cells", "-")),
            "-" if hit_rate is None else f"{float(hit_rate):.2f}",
            ms("p50_latency"),
            ms("p99_latency"),
            "-" if dollars is None else f"{float(dollars):.2f}",
            str(record.get("bit_equal_spotcheck", "-")),
        ))
    lines += _table(header, rows)
    return lines


def _render_benches(benches: Sequence[dict]) -> List[str]:
    serve = [b for b in benches if b.get("bench") == "serve"]
    benches = [b for b in benches if b.get("bench") != "serve"]
    if not benches:
        return _render_serve_benches(serve)
    lines = ["### Bench records", ""]
    header = ("#", "schema", "cells", "jobs", "jobs1 s", "cold s",
              "warm s", "par x", "warm x")
    rows = []
    for i, record in enumerate(benches):
        modes = record.get("modes", {})

        def mode_seconds(name: str) -> str:
            seconds = modes.get(name, {}).get("seconds")
            return "-" if seconds is None else f"{float(seconds):.2f}"

        par = _bench_field(record, "speedup_parallel")
        warm = _bench_field(record, "speedup_warm")
        rows.append((
            str(i),
            str(record.get("schema_version", 1)),
            str(record.get("cells", "-")),
            str(record.get("jobs", "-")),
            mode_seconds("jobs1"),
            mode_seconds("jobsN_cold"),
            mode_seconds("jobsN_warm"),
            "-" if par is None else f"{par:.2f}",
            "-" if warm is None else f"{warm:.2f}",
        ))
    lines += _table(header, rows)
    if serve:
        lines += [""] + _render_serve_benches(serve)
    return lines


def render_report(sources: Sequence[PerfSource], top: int = 10) -> str:
    """The deterministic Markdown report for one or many inputs."""
    lines = ["# Perf & cost report"]
    for source in sources:
        lines += ["", f"## {source.label}", ""]
        if source.runs:
            lines += _render_runs(source.runs)
            hot = _render_hot_spans(source.runs, top)
            if hot:
                lines += [""] + hot
        if source.schedulers:
            lines += [""] + _render_schedulers(source.schedulers)
        if source.servers:
            lines += [""] + _render_servers(source.servers)
        if source.benches:
            lines += [""] + _render_benches(source.benches)
    return "\n".join(lines)


# -- the regression gate ----------------------------------------------------

@dataclass
class DiffEntry:
    """One metric that moved (or a status flip) between two inputs."""

    key: str
    metric: str
    before: str
    after: str
    #: relative change ((after - before) / before); None for status flips
    change: Optional[float]
    regression: bool

    def render(self) -> str:
        arrow = "REGRESSION" if self.regression else "improvement"
        change = "" if self.change is None else f" ({self.change:+.1%})"
        return (f"{self.key} · {self.metric}: {self.before} -> "
                f"{self.after}{change} [{arrow}]")


@dataclass
class PerfDiff:
    """The outcome of comparing two inputs run-by-run."""

    label_a: str
    label_b: str
    threshold: float
    cost_threshold: float
    entries: List[DiffEntry] = field(default_factory=list)
    missing: List[str] = field(default_factory=list)
    added: List[str] = field(default_factory=list)
    compared_runs: int = 0
    compared_benches: int = 0
    compared_servers: int = 0

    @property
    def regressions(self) -> List[DiffEntry]:
        return [e for e in self.entries if e.regression]

    @property
    def improvements(self) -> List[DiffEntry]:
        return [e for e in self.entries if not e.regression]

    @property
    def exit_code(self) -> int:
        """Non-zero iff a threshold-crossing regression exists (CI gate)."""
        return 1 if self.regressions else 0

    def render(self) -> str:
        lines = [
            f"# Perf diff — {self.label_a} vs {self.label_b}",
            "",
            f"compared {self.compared_runs} runs, "
            f"{self.compared_benches} bench records"
            + (f", {self.compared_servers} server journals"
               if self.compared_servers else "")
            + f" · time threshold ±{self.threshold:.1%} · cost threshold "
            f"±{self.cost_threshold:.1%}",
        ]
        regressions = self.regressions
        improvements = self.improvements
        if regressions:
            lines += ["", f"REGRESSIONS ({len(regressions)}):"]
            lines += [f"  {entry.render()}" for entry in regressions]
        else:
            lines += ["", "no regressions"]
        if improvements:
            lines += ["", f"improvements ({len(improvements)}):"]
            lines += [f"  {entry.render()}" for entry in improvements]
        if self.missing:
            lines += ["", f"missing in {self.label_b}:"]
            lines += [f"  {key}" for key in self.missing]
        if self.added:
            lines += ["", f"only in {self.label_b}:"]
            lines += [f"  {key}" for key in self.added]
        return "\n".join(lines)


def _compare(
    diff: PerfDiff,
    key: str,
    metric: str,
    before: float,
    after: float,
    threshold: float,
    worse: str = "higher",
    fmt: str = ".4f",
) -> None:
    """Append a diff entry when the relative change crosses the threshold."""
    if before <= 0.0 and after <= 0.0:
        return
    base = before if before > 0.0 else after
    change = (after - before) / base
    if abs(change) <= threshold:
        return
    regression = change > 0 if worse == "higher" else change < 0
    diff.entries.append(DiffEntry(
        key=key,
        metric=metric,
        before=format(before, fmt),
        after=format(after, fmt),
        change=change,
        regression=regression,
    ))


def diff_sources(
    a: PerfSource,
    b: PerfSource,
    threshold: float = 0.05,
    cost_threshold: Optional[float] = None,
) -> PerfDiff:
    """Compare two inputs; ``b`` regressing past a threshold gates CI.

    Runs pair by coordinate key, bench records and server journals by
    position. Time, dollars, and serving latency percentiles regress
    when they *rise* by more than the relative threshold; speedups and
    the serving cache hit-rate regress when they *fall*. A run that
    completed in ``a`` but failed in ``b`` is always a regression.
    """
    diff = PerfDiff(
        label_a=a.label,
        label_b=b.label,
        threshold=threshold,
        cost_threshold=threshold if cost_threshold is None else cost_threshold,
    )
    amap = {row.key: row for row in a.runs}
    bmap = {row.key: row for row in b.runs}
    diff.missing = [key for key in amap if key not in bmap]
    diff.added = [key for key in bmap if key not in amap]
    for key in amap:
        if key not in bmap:
            continue
        ra, rb = amap[key], bmap[key]
        diff.compared_runs += 1
        if ra.status != rb.status:
            diff.entries.append(DiffEntry(
                key=key, metric="status", before=ra.status, after=rb.status,
                change=None,
                regression=(ra.status == "ok" and rb.status != "ok"),
            ))
        _compare(diff, key, "total seconds", ra.total_seconds,
                 rb.total_seconds, threshold, fmt=".1f")
        if ra.cost is not None and rb.cost is not None:
            _compare(diff, key, "dollars", float(ra.cost["dollars"]),
                     float(rb.cost["dollars"]), diff.cost_threshold)
    for i, (sa, sb) in enumerate(zip(a.servers, b.servers)):
        key = f"server[{i}]"
        diff.compared_servers += 1
        _compare(diff, key, "p50 latency seconds", sa.p50_latency,
                 sb.p50_latency, threshold, fmt=".4f")
        _compare(diff, key, "p99 latency seconds", sa.p99_latency,
                 sb.p99_latency, threshold, fmt=".4f")
        _compare(diff, key, "cache hit-rate", sa.cache_hit_rate,
                 sb.cache_hit_rate, threshold, worse="lower", fmt=".3f")
        _compare(diff, key, "dollars", sa.dollars, sb.dollars,
                 diff.cost_threshold)
    for i, (ba, bb) in enumerate(zip(a.benches, b.benches)):
        key = f"bench:{ba.get('bench', '?')}[{i}]"
        diff.compared_benches += 1
        if ba.get("bench") == "serve" or bb.get("bench") == "serve":
            for name, worse, gate in (
                ("p50_latency", "higher", threshold),
                ("p99_latency", "higher", threshold),
                ("cache_hit_rate", "lower", threshold),
                ("cost_dollars", "higher", diff.cost_threshold),
            ):
                va, vb = ba.get(name), bb.get(name)
                if va is None or vb is None:
                    continue
                _compare(diff, key, name, float(va), float(vb), gate,
                         worse=worse)
            continue
        modes_a = ba.get("modes", {})
        modes_b = bb.get("modes", {})
        for mode in sorted(set(modes_a) & set(modes_b)):
            sa = modes_a[mode].get("seconds")
            sb = modes_b[mode].get("seconds")
            if sa is None or sb is None:
                continue
            _compare(diff, key, f"{mode} seconds", float(sa), float(sb),
                     threshold, fmt=".2f")
        for name in ("speedup_parallel", "speedup_warm"):
            va = _bench_field(ba, name)
            vb = _bench_field(bb, name)
            if va is None or vb is None:
                continue
            _compare(diff, key, name, va, vb, threshold, worse="lower",
                     fmt=".2f")
    return diff
