"""The run journal: one JSONL event stream per simulated experiment.

The paper kept "more than 20 GB of log files" and derived every
resource figure from them offline (§1, §4.2). A journal is this
reproduction's equivalent: a compact, deterministic event stream that
captures a run's full story — metadata, the span tree, and the final
metrics — so "which superstep shuffled the most bytes" is a question
for a file, not a debugger.

Determinism is a contract: timestamps are simulated seconds, span ids
are sequential, keys are sorted, and floats serialize via ``repr`` —
running the same seeded cell twice produces byte-identical journals
(the guard test in ``tests/test_obs.py`` holds this line).

Line format, one JSON object per line::

    {"type": "meta",   "system": "BV", "workload": "pagerank", ...}
    {"type": "span",   "id": 1, "parent": null, "name": "run",
     "cat": "run", "ts": 0.0, "dur": 123.4, "args": {...}}
    {"type": "metric", "kind": "counter", "name": "bytes_shuffled",
     "value": 1.2e9}
    {"type": "metric", "kind": "histogram", "name": "superstep_seconds",
     "count": 30, "sum": 98.7, "min": 1.2, "max": 9.8, "mean": 3.29}
    {"type": "cost",   "schema": 1, "machines": 16, "dollars": 0.81, ...}

The ``cost`` event is the run's resource bill (see
:mod:`repro.obs.cost`), appended as the final record of every engine
run's journal; streams without run billing metadata (the scheduler's
host-clock journal) carry none.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Union

from .cost import cost_event_from_events
from .metrics import Histogram, MetricsRegistry
from .spans import Tracer

__all__ = ["JournalError", "Journal", "build_journal"]

#: bump when the event schema changes incompatibly
JOURNAL_VERSION = 1


class JournalError(ValueError):
    """A journal file is missing, malformed, or not a journal."""


def _dumps(event: dict) -> str:
    """Canonical JSON: sorted keys, no whitespace — determinism's half."""
    return json.dumps(event, sort_keys=True, separators=(",", ":"))


class Journal:
    """An in-memory event stream, readable and writable as JSONL."""

    def __init__(self, events: List[dict]) -> None:
        self.events = events

    # -- building ---------------------------------------------------------

    @classmethod
    def read(cls, path: Union[str, Path]) -> "Journal":
        """Load a JSONL journal; raises :class:`JournalError` when invalid."""
        try:
            text = Path(path).read_text(encoding="ascii")
        except OSError as exc:
            raise JournalError(f"cannot read journal {path}: {exc}") from exc
        except UnicodeDecodeError as exc:
            raise JournalError(f"{path} is not a text journal: {exc}") from exc
        return cls.loads(text, source=str(path))

    @classmethod
    def loads(cls, text: str, source: str = "<string>") -> "Journal":
        """Parse journal text (the inverse of :meth:`dumps`).

        Canonical dumps round-trip exactly: ``Journal.loads(t).dumps()``
        equals ``t`` whenever ``t`` came from :meth:`dumps` (JSON float
        repr is reversible), which is what lets cached cells replay
        byte-identical journals.
        """
        path = source
        events = []
        for lineno, line in enumerate(text.splitlines(), start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                raise JournalError(
                    f"{path}:{lineno}: not JSON ({exc.msg})"
                ) from exc
            if not isinstance(event, dict) or "type" not in event:
                raise JournalError(
                    f"{path}:{lineno}: journal events need a 'type' field"
                )
            events.append(event)
        if not events or events[0].get("type") != "meta":
            raise JournalError(f"{path}: journals start with a meta event")
        return cls(events)

    def dumps(self) -> str:
        """The canonical JSONL text (what :meth:`write` puts on disk)."""
        return "\n".join(_dumps(event) for event in self.events) + "\n"

    def write(self, path: Union[str, Path]) -> int:
        """Write the canonical JSONL form; returns lines written.

        The write is atomic (temp file + rename in the target
        directory): a reader — or a concurrent grid writing per-cell
        journals — never observes a torn journal.
        """
        target = Path(path)
        tmp = target.with_name(f".{target.name}.{os.getpid()}.tmp")
        tmp.write_text(self.dumps(), encoding="ascii")
        os.replace(tmp, target)
        return len(self.events)

    # -- accessors --------------------------------------------------------

    @property
    def meta(self) -> Dict[str, object]:
        """The run's metadata event (always first)."""
        for event in self.events:
            if event.get("type") == "meta":
                return event
        return {"type": "meta"}

    def spans(self) -> List[dict]:
        """Span events in (ts, id) order."""
        return [e for e in self.events if e.get("type") == "span"]

    def metric_events(self) -> List[dict]:
        """Metric events in name order."""
        return [e for e in self.events if e.get("type") == "metric"]

    def supersteps(self) -> List[dict]:
        """The superstep-level spans, in execution order."""
        return [e for e in self.spans() if e.get("name") == "superstep"]

    def cost(self) -> Optional[dict]:
        """The run's cost event (its final record), or ``None``."""
        for event in self.events:
            if event.get("type") == "cost":
                return event
        return None

    def scalar(self, name: str, default: float = 0.0) -> float:
        """A counter/gauge's final value, or ``default``."""
        for event in self.metric_events():
            if event.get("name") == name and event.get("kind") != "histogram":
                return float(event["value"])
        return default

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:
        meta = self.meta
        return (
            f"Journal({meta.get('system')} {meta.get('workload')}/"
            f"{meta.get('dataset')}: {len(self.events)} events)"
        )


def build_journal(
    meta: Dict[str, object],
    tracer: Tracer,
    metrics: Optional[MetricsRegistry] = None,
) -> Journal:
    """Assemble the canonical event stream for one finished run.

    Only closed spans are journaled; an open span at build time means a
    code path failed to unwind its tracer and is worth surfacing.
    """
    if tracer.open_depth:
        raise JournalError(
            f"cannot journal a run with {tracer.open_depth} open span(s); "
            f"innermost is {tracer.current.name!r}"  # type: ignore[union-attr]
        )
    events: List[dict] = [dict(meta, type="meta", version=JOURNAL_VERSION)]
    for span in tracer.finished():
        events.append({
            "type": "span",
            "id": span.id,
            "parent": span.parent,
            "name": span.name,
            "cat": span.cat,
            "ts": span.start,
            "dur": span.duration,
            "args": span.attrs,
        })
    if metrics is not None:
        for name in metrics.scalar_names():
            metric = metrics.get(name)
            events.append({
                "type": "metric",
                "kind": getattr(metric, "kind", "gauge"),
                "name": name,
                "value": metrics.value(name),
            })
        for hist in metrics.histograms():
            event: Dict[str, object] = {
                "type": "metric",
                "kind": Histogram.kind,
                "name": hist.name,
            }
            event.update(hist.summary())
            events.append(event)
    # The resource bill rides last: a pure function of the events above,
    # so journal byte-determinism carries over to it for free. Non-run
    # streams (no machines/total_time in meta) get none.
    cost = cost_event_from_events(events)
    if cost is not None:
        events.append(cost)
    return Journal(events)
