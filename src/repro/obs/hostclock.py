"""The one sanctioned door to the host's wall clock.

Everything the simulation reports is simulated time — RPL001 bans the
wall-clock API across the source tree so a stray ``time.time()`` can
never leak host seconds into paper-scale results. But profiling the
*simulator itself* (how long does a grid take to run, which engine's
cost model is the Python hot spot) legitimately needs real time. That
capability lives here, and only here: RPL001's allowlist names exactly
this module, so any other wall-clock read still fails the lint.

Host readings must never flow back into simulated quantities; they are
for meta-level reporting (progress lines, profiling harnesses) only.
"""

from __future__ import annotations

import time

__all__ = ["host_now", "host_sleep", "HostTimer"]


def host_now() -> float:
    """Monotonic host seconds (``time.perf_counter``): profiling only."""
    return time.perf_counter()


def host_sleep(seconds: float) -> None:
    """Block this process for host ``seconds`` (``time.sleep``).

    For harness-level pacing only — the executor's retry backoff waits
    here between re-attempts of a crashed worker. Nothing simulated may
    ever depend on it.
    """
    if seconds > 0:
        time.sleep(seconds)


class HostTimer:
    """Measures host seconds spent in a block of *simulator* code.

    Usage::

        with HostTimer() as timer:
            grid = run_grid(spec)
        print(f"simulated the grid in {timer.elapsed:.2f} host seconds")
    """

    def __init__(self) -> None:
        self.start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "HostTimer":
        self.start = host_now()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed = host_now() - self.start
