"""Journal exporters: Chrome trace, per-superstep CSV, terminal summary.

Three consumers of the same event stream (§4.2's offline analysis,
translated):

* :func:`chrome_trace` — Chrome ``trace_event`` JSON that loads in
  Perfetto or ``chrome://tracing``; spans become complete events on the
  simulated-microsecond timeline.
* :func:`write_superstep_csv` — one row per superstep for the bench
  harness (the per-iteration series behind Table 6 and Figure 10).
* :func:`render_summary` / :func:`one_line_summary` — the terminal
  views: a phase timeline with the hottest spans, and the single
  diagnosable line ``repro run``/``repro grid`` print by default.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, List, Tuple, Union

from .journal import Journal

__all__ = [
    "chrome_trace",
    "write_chrome",
    "SUPERSTEP_COLUMNS",
    "superstep_rows",
    "write_superstep_csv",
    "render_summary",
    "one_line_summary",
]


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 3600:
        return f"{seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"{seconds / 60:.1f}m"
    return f"{seconds:.1f}s"


def _fmt_bytes(nbytes: float) -> str:
    for unit, size in (("TB", 1e12), ("GB", 1e9), ("MB", 1e6), ("KB", 1e3)):
        if nbytes >= size:
            return f"{nbytes / size:.1f} {unit}"
    return f"{nbytes:.0f} B"


def _fmt_count(count: float) -> str:
    if count >= 1e6:
        return f"{count / 1e6:.1f}M"
    if count >= 1e3:
        return f"{count / 1e3:.1f}K"
    return f"{count:.0f}"


# -- Chrome trace_event ----------------------------------------------------

def chrome_trace(journal: Journal) -> dict:
    """The journal as a Chrome ``trace_event`` object.

    Spans become complete ("X") events with microsecond timestamps on
    the *simulated* timeline; run metadata rides along in ``otherData``.
    """
    meta = journal.meta
    label = (
        f"{meta.get('system', '?')} {meta.get('workload', '?')}/"
        f"{meta.get('dataset', '?')}@{meta.get('machines', '?')}"
    )
    events: List[dict] = [
        {"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
         "args": {"name": label}},
        {"name": "thread_name", "ph": "M", "pid": 1, "tid": 1,
         "args": {"name": "simulated cluster"}},
    ]
    for span in journal.spans():
        events.append({
            "name": span["name"],
            "cat": span.get("cat") or "span",
            "ph": "X",
            "ts": span["ts"] * 1e6,
            "dur": span["dur"] * 1e6,
            "pid": 1,
            "tid": 1,
            "args": span.get("args", {}),
        })
    other = {k: v for k, v in meta.items() if k != "type"}
    return {"traceEvents": events, "displayTimeUnit": "ms", "otherData": other}


def write_chrome(journal: Journal, path: Union[str, Path]) -> int:
    """Write the Chrome trace JSON; returns the event count."""
    trace = chrome_trace(journal)
    Path(path).write_text(
        json.dumps(trace, sort_keys=True, separators=(",", ":")) + "\n",
        encoding="ascii",
    )
    return len(trace["traceEvents"])


# -- per-superstep CSV -----------------------------------------------------

SUPERSTEP_COLUMNS = (
    "iteration",
    "start_s",
    "duration_s",
    "active_vertices",
    "messages",
    "updates",
    "bytes_shuffled",
    "peak_memory_bytes",
)


def superstep_rows(journal: Journal) -> List[Dict[str, float]]:
    """One dict per superstep span, in execution order."""
    rows = []
    for span in journal.supersteps():
        args = span.get("args", {})
        rows.append({
            "iteration": args.get("iteration", 0),
            "start_s": span["ts"],
            "duration_s": span["dur"],
            "active_vertices": args.get("active_vertices", 0),
            "messages": args.get("messages", 0),
            "updates": args.get("updates", 0),
            "bytes_shuffled": args.get("bytes_shuffled", 0.0),
            "peak_memory_bytes": args.get("peak_memory_bytes", 0.0),
        })
    return rows


def write_superstep_csv(journal: Journal, path: Union[str, Path]) -> int:
    """Write the per-superstep series as CSV; returns the row count."""
    rows = superstep_rows(journal)
    with open(path, "w", encoding="ascii", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=SUPERSTEP_COLUMNS)
        writer.writeheader()
        writer.writerows(rows)
    return len(rows)


# -- terminal views --------------------------------------------------------

def _self_times(spans: List[dict]) -> Dict[int, float]:
    """Per-span self time: duration minus direct children's durations."""
    selfs = {span["id"]: span["dur"] for span in spans}
    for span in spans:
        parent = span.get("parent")
        if parent in selfs:
            selfs[parent] -= span["dur"]
    return selfs


def _hot_spans(spans: List[dict], top: int) -> List[Tuple[str, int, float, float]]:
    """Top (label, count, total, self) groups ranked by self time."""
    selfs = _self_times(spans)
    groups: Dict[str, List[float]] = {}
    for span in spans:
        label = f"{span['name']}" + (f" [{span['cat']}]" if span.get("cat") else "")
        total, self_time, count = groups.get(label, [0.0, 0.0, 0])
        groups[label] = [
            total + span["dur"], self_time + selfs[span["id"]], count + 1,
        ]
    ranked = sorted(
        ((label, int(count), total, self_time)
         for label, (total, self_time, count) in groups.items()),
        key=lambda item: (-item[3], item[0]),
    )
    return ranked[:top]


def _bar(fraction: float, width: int = 24) -> str:
    filled = int(round(max(0.0, min(1.0, fraction)) * width))
    return "#" * filled + "." * (width - filled)


def _render_scheduler_summary(journal: Journal, top: int) -> str:
    """The executor's story: cache/retry counters + the grid's bill.

    ``repro grid --trace`` writes ``_scheduler.jsonl`` next to the
    per-cell journals; its spans are host-clock (scheduling overhead),
    its counters are the cache-hit/retry/executed tallies, and the
    ``cost.*`` counters aggregate every cell's cost record.
    """
    meta = journal.meta
    spans = journal.spans()
    grid_spans = [s for s in spans if s.get("name") == "grid"]
    total = grid_spans[0]["dur"] if grid_spans else sum(
        s["dur"] for s in spans if s.get("parent") is None
    )
    lines = [
        f"scheduler — {meta.get('cells', '?')} cells · "
        f"{meta.get('cache_hits', '?')} cached · "
        f"{meta.get('executed', '?')} executed · "
        f"{meta.get('retries', '?')} retries · jobs={meta.get('jobs', '?')} · "
        f"{_fmt_seconds(total)} host"
    ]
    dollars = journal.scalar("cost.dollars")
    if dollars:
        answers = journal.scalar("cost.answers")
        per = f" · ${dollars / answers:.4f}/answer" if answers else ""
        lines.append(
            f"  grid cost ${dollars:.4f} · "
            f"{journal.scalar('cost.machine_seconds'):.0f} machine-s · "
            f"{journal.scalar('cost.gb_shuffled'):.2f} GB shuffled · "
            f"{journal.scalar('cost.memory_gb_hours'):.3f} mem GB-h · "
            f"{answers:.0f} answers{per}"
        )
        recovery = journal.scalar("cost.recovery_seconds")
        if recovery:
            lines.append(
                f"  chaos recovery {_fmt_seconds(recovery)} simulated "
                f"(priced inside the machine-second bill)"
            )
    hot = _hot_spans(spans, top)
    if hot:
        lines.append(f"  top {len(hot)} scheduler spans by self time (host):")
        for label, count, span_total, self_time in hot:
            lines.append(
                f"    {label:<24s} x{count:<5d} self "
                f"{_fmt_seconds(self_time):>8s} · total "
                f"{_fmt_seconds(span_total)}"
            )
    return "\n".join(lines)


def _render_server_summary(journal: Journal, top: int) -> str:
    """The serve daemon's story: queue, hit-rate, latency, per-client bill.

    ``repro serve`` writes ``_server.jsonl`` at shutdown; its spans are
    host-clock per-job service records, its counters the serving
    tallies, and meta carries the latency percentiles and each client's
    simulated bill.
    """
    meta = journal.meta
    lines = [
        f"server {meta.get('address', '?')} — {meta.get('jobs', '?')} jobs "
        f"from {meta.get('clients', '?')} clients · "
        f"{meta.get('cells', '?')} cells · "
        f"{meta.get('rejected', '?')} rejected"
    ]
    hit_rate = meta.get("cache_hit_rate")
    lines.append(
        f"  cache: {meta.get('cache_hits', '?')} hits · "
        f"{meta.get('executed', '?')} executed"
        + (f" · hit-rate {float(hit_rate):.2f}"
           if isinstance(hit_rate, (int, float)) else "")
    )
    p50, p99 = meta.get("p50_latency"), meta.get("p99_latency")
    if isinstance(p50, (int, float)) and isinstance(p99, (int, float)):
        lines.append(
            f"  latency p50 {_fmt_seconds(float(p50))} · "
            f"p99 {_fmt_seconds(float(p99))} (host, submit-to-finish)"
        )
    dollars = meta.get("dollars")
    if isinstance(dollars, (int, float)) and dollars:
        lines.append(f"  served cost ${float(dollars):.4f} (simulated)")
    per_client = meta.get("per_client")
    if isinstance(per_client, dict) and per_client:
        ranked = sorted(
            per_client.items(),
            key=lambda kv: (-float(kv[1].get("dollars", 0.0)), kv[0]),
        )
        lines.append(f"  top {min(top, len(ranked))} clients by bill:")
        for client, account in ranked[:top]:
            lines.append(
                f"    {client:<24s} {float(account.get('jobs', 0)):3.0f} jobs"
                f" · {float(account.get('cells', 0)):4.0f} cells · "
                f"${float(account.get('dollars', 0.0)):.4f}"
            )
    hot = _hot_spans(journal.spans(), top)
    if hot:
        lines.append(f"  top {len(hot)} server spans by self time (host):")
        for label, count, span_total, self_time in hot:
            lines.append(
                f"    {label:<24s} x{count:<5d} self "
                f"{_fmt_seconds(self_time):>8s} · total "
                f"{_fmt_seconds(span_total)}"
            )
    return "\n".join(lines)


def render_summary(journal: Journal, top: int = 5) -> str:
    """The terminal timeline: phases, supersteps, and the hot spans.

    Scheduler journals (``_scheduler.jsonl``) and server journals
    (``_server.jsonl``) get their own shapes: cache/retry counters and
    the grid's aggregated cost, or the serving queue/latency/bill view,
    instead of the per-run phase bars.
    """
    meta = journal.meta
    if meta.get("kind") == "scheduler":
        return _render_scheduler_summary(journal, top)
    if meta.get("kind") == "server":
        return _render_server_summary(journal, top)
    spans = journal.spans()
    run_spans = [s for s in spans if s.get("cat") == "run"]
    total = run_spans[0]["dur"] if run_spans else sum(
        s["dur"] for s in spans if s.get("parent") is None
    )
    status = meta.get("status", "?")
    lines = [
        f"{meta.get('system', '?')} {meta.get('workload', '?')}/"
        f"{meta.get('dataset', '?')}@{meta.get('machines', '?')} — "
        f"{status} · total {_fmt_seconds(total)} (simulated)"
    ]
    for span in spans:
        if span.get("cat") != "phase":
            continue
        share = span["dur"] / total if total > 0 else 0.0
        lines.append(
            f"  {span['name']:<9s} {_bar(share)} "
            f"{_fmt_seconds(span['dur']):>8s}  {share * 100:4.1f}%"
        )
    steps = journal.supersteps()
    if steps:
        durs = [s["dur"] for s in steps]
        lines.append(
            f"  supersteps: {len(steps)} · per-superstep "
            f"{_fmt_seconds(min(durs))}/{_fmt_seconds(sum(durs) / len(durs))}/"
            f"{_fmt_seconds(max(durs))} (min/mean/max)"
        )
    shuffled = journal.scalar("bytes_shuffled")
    messages = journal.scalar("messages_sent")
    if shuffled or messages:
        lines.append(
            f"  shuffled {_fmt_bytes(shuffled)} · "
            f"{_fmt_count(messages)} messages"
        )
    cost = journal.cost()
    if cost is not None:
        per = cost.get("dollars_per_answer")
        lines.append(
            f"  cost ${cost['dollars']:.4f} · "
            f"{cost['machine_seconds']:.0f} machine-s · "
            f"{cost['memory_gb_hours']:.3f} mem GB-h"
            + (f" · ${per:.4f}/answer" if per is not None else
               " · no answer (failure billed, nothing earned)")
        )
    hot = _hot_spans(spans, top)
    if hot:
        lines.append(f"  top {len(hot)} spans by self time:")
        for label, count, span_total, self_time in hot:
            share = self_time / total if total > 0 else 0.0
            lines.append(
                f"    {label:<24s} x{count:<5d} self {_fmt_seconds(self_time):>8s}"
                f" ({share * 100:4.1f}%) · total {_fmt_seconds(span_total)}"
            )
    return "\n".join(lines)


def one_line_summary(result) -> str:
    """The always-on diagnosis line for ``repro run``/``repro grid``.

    Works from a :class:`~repro.engines.base.RunResult` alone (duck
    typed to avoid an import cycle), so it costs nothing when tracing
    was not requested.
    """
    phases = (
        ("load", result.load_time),
        ("execute", result.execute_time),
        ("save", result.save_time),
        ("overhead", result.overhead_time),
    )
    name, seconds = max(phases, key=lambda p: p[1])
    parts = [
        f"slowest phase {name} ({_fmt_seconds(seconds)} of "
        f"{_fmt_seconds(result.total_time)})",
        f"{result.iterations} supersteps",
    ]
    try:
        parts.append(f"{_fmt_bytes(result.metrics.value('bytes_shuffled'))} shuffled")
    except KeyError:
        pass
    if not result.ok:
        parts.append(f"failed: {result.failure}")
    return "spans: " + " · ".join(parts)
