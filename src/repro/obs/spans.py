"""Nested spans on the simulated clock.

The paper's analysis is log-driven: per-second resource series on every
machine, sliced offline into per-phase and per-iteration behaviour
(§4.2, Figures 10–13). A :class:`Tracer` is the simulated equivalent of
those logs' *time structure*: every run produces a tree of spans —
run → phase → superstep → shuffle/compute/barrier — whose timestamps
are **simulated seconds** read from the cluster clock, never the host
clock. Recording a span therefore cannot perturb a run: the tracer only
*reads* time that the cost models already advanced, so a traced run and
an untraced run produce byte-identical results.

Spans close strictly LIFO (a child must end before its parent); the
tracer enforces this so exported traces are always well-nested.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Union

__all__ = ["Attr", "Span", "SpanError", "Tracer"]

#: span attribute values must be JSON scalars so journals stay portable
Attr = Union[str, int, float, bool]


class SpanError(RuntimeError):
    """A span was closed out of order, twice, or never opened."""


@dataclass
class Span:
    """One timed region of a run, on the simulated clock."""

    id: int
    parent: Optional[int]      # id of the enclosing span, None for the root
    name: str                  # "run", "load", "superstep", "shuffle", ...
    cat: str                   # grouping: "phase", "cluster", an engine model
    start: float               # simulated seconds
    end: Optional[float] = None
    attrs: Dict[str, Attr] = field(default_factory=dict)

    @property
    def closed(self) -> bool:
        """True once the span has ended."""
        return self.end is not None

    @property
    def duration(self) -> float:
        """Simulated seconds covered; 0.0 while still open."""
        return (self.end - self.start) if self.end is not None else 0.0

    def __repr__(self) -> str:
        when = f"{self.start:.3f}+{self.duration:.3f}s" if self.closed else "open"
        return f"Span({self.name!r}, cat={self.cat!r}, {when})"


class Tracer:
    """Builds the span tree for one run.

    The tracer starts unbound; :class:`~repro.cluster.Cluster` binds it
    to its :class:`~repro.cluster.tracker.SimClock` on construction so
    every timestamp is a simulated second. Span ids are sequential,
    which keeps journals deterministic: the same seed produces the same
    ids in the same order.
    """

    def __init__(self, now_fn: Optional[Callable[[], float]] = None) -> None:
        self._now_fn = now_fn
        self._stack: List[Span] = []
        self._next_id = 1
        #: closed spans, in close order (children before parents)
        self.spans: List[Span] = []

    def bind(self, now_fn: Callable[[], float]) -> None:
        """Attach the simulated-clock reader the spans timestamp with."""
        self._now_fn = now_fn

    def now(self) -> float:
        """Current simulated time; 0.0 before a clock is bound."""
        return self._now_fn() if self._now_fn is not None else 0.0

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span."""
        return self._stack[-1] if self._stack else None

    @property
    def open_depth(self) -> int:
        """How many spans are currently open."""
        return len(self._stack)

    def start(self, name: str, cat: str = "", **attrs: Attr) -> Span:
        """Open a span nested under the current one."""
        parent = self._stack[-1].id if self._stack else None
        span = Span(
            id=self._next_id,
            parent=parent,
            name=name,
            cat=cat,
            start=self.now(),
            attrs=dict(attrs),
        )
        self._next_id += 1
        self._stack.append(span)
        return span

    def end(self, span: Span, **attrs: Attr) -> Span:
        """Close a span; it must be the innermost open one (LIFO)."""
        if span.closed:
            raise SpanError(f"span {span.name!r} already closed")
        if not self._stack or self._stack[-1] is not span:
            open_name = self._stack[-1].name if self._stack else "<none>"
            raise SpanError(
                f"span {span.name!r} closed out of order; innermost open "
                f"span is {open_name!r}"
            )
        self._stack.pop()
        span.attrs.update(attrs)
        span.end = self.now()
        self.spans.append(span)
        return span

    @contextmanager
    def span(self, name: str, cat: str = "", **attrs: Attr) -> Iterator[Span]:
        """Context manager form; closes the span even on failure.

        A simulated failure (OOM, timeout, ...) unwinding through the
        span records the exception type in the span's ``error`` attr, so
        journals show exactly where a run died. Failures that carry
        provenance — a ``kind`` (the paper's OOM/TO/MPI/SHFL code) and a
        ``machine`` — land as span attrs too; ``machine`` is ``-1`` for
        cluster-wide failures. (Duck-typed: obs cannot import
        :class:`~repro.cluster.failures.SimulatedFailure` without a
        layering cycle.)
        """
        opened = self.start(name, cat=cat, **attrs)
        try:
            yield opened
        except BaseException as exc:
            opened.attrs.setdefault("error", type(exc).__name__)
            kind = getattr(exc, "kind", None)
            if kind is not None:
                opened.attrs.setdefault("kind", str(kind))
                machine = getattr(exc, "machine", None)
                opened.attrs.setdefault(
                    "machine", int(machine) if machine is not None else -1
                )
            raise
        finally:
            self.end(opened)

    def finished(self) -> List[Span]:
        """Closed spans sorted by (start time, id): tree order."""
        return sorted(self.spans, key=lambda s: (s.start, s.id))

    def __repr__(self) -> str:
        return (
            f"Tracer({len(self.spans)} closed, {len(self._stack)} open, "
            f"t={self.now():.3f}s)"
        )
