"""Cost-per-answer accounting: fold one run's journal into dollars.

The paper ranks systems by response time, but the resource-efficiency
literature (Coimbra et al., PAPERS.md) argues the real currency is what
an answer *costs*: machine-seconds held, the memory×time integral,
bytes moved. :class:`CostModel` prices those quantities with simulated
cloud rates and folds a journal's span tree and metrics into one
canonical :class:`CostReport` — the ``{"type": "cost"}`` event
:func:`repro.obs.journal.build_journal` appends as a run's final
record.

Determinism is inherited, not re-proven: the report is a pure function
of the journal's event list (meta → spans → metrics), which is already
byte-identical for the same seed across ``--jobs`` modes and cache
replay, so the cost record is too.

Every quantity is derived from events:

* ``machine_seconds`` — ``machines × total_time`` from the meta event
  (every machine is billed for the whole run, like a cloud cluster);
* ``memory_byte_seconds`` — the resident-memory × time integral the
  cluster primitives accrue (``memory_byte_seconds`` metric);
* ``bytes_shuffled`` — the ``bytes_shuffled`` counter;
* ``bytes_spilled`` — bytes through storage spans (``hdfs_read``/
  ``hdfs_write``/``disk_read``/``disk_write``);
* ``recovery_seconds`` — the chaos layer's ``recovery_seconds``
  counter, surfaced as a priced line-item (``recovery_dollars`` is the
  slice of compute dollars spent re-earning lost progress).

``answers`` is 1 for a completed run and 0 for a failure cell — a run
that OOMs or times out still bills machine time but produced nothing,
so its ``dollars_per_answer`` is ``None`` (the paper's TO/OOM cells,
priced).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

__all__ = [
    "COST_SCHEMA",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "CostReport",
    "cost_report_from_events",
    "cost_event_from_events",
    "aggregate_costs",
]

#: bump when the cost event's fields change incompatibly
COST_SCHEMA = 1

#: span names whose ``bytes`` argument counts as spilled-to-storage
_STORAGE_SPANS = frozenset({"hdfs_read", "hdfs_write", "disk_read", "disk_write"})

GB = 1e9
HOUR = 3600.0


@dataclass(frozen=True)
class CostModel:
    """Simulated cloud rates (stable constants, not market prices).

    Defaults are in the neighbourhood of the paper era's EC2 r3.xlarge
    on-demand pricing; their absolute level is arbitrary — only ratios
    between runs matter, and determinism requires they never float.
    """

    dollars_per_machine_hour: float = 0.36
    dollars_per_gb_shuffled: float = 0.01
    dollars_per_gb_hour_memory: float = 0.005

    def rates(self) -> Dict[str, float]:
        """The rate card recorded inside every cost event."""
        return {
            "machine_hour": self.dollars_per_machine_hour,
            "gb_shuffled": self.dollars_per_gb_shuffled,
            "gb_hour_memory": self.dollars_per_gb_hour_memory,
        }


DEFAULT_COST_MODEL = CostModel()


@dataclass(frozen=True)
class CostReport:
    """One run's resource bill: quantities, then dollars.

    ``recovery_dollars`` is informational — the compute dollars
    attributable to chaos recovery time — and is already included in
    ``compute_dollars`` (recovery happens on the same billed machines),
    so ``dollars = compute + shuffle + memory``.
    """

    machines: int
    total_seconds: float
    machine_seconds: float
    memory_byte_seconds: float
    bytes_shuffled: float
    bytes_spilled: float
    recovery_seconds: float
    recovery_machine_seconds: float
    compute_dollars: float
    shuffle_dollars: float
    memory_dollars: float
    recovery_dollars: float
    dollars: float
    answers: int
    rates: Dict[str, float]

    @property
    def memory_gb_hours(self) -> float:
        """The memory×time integral in billing units."""
        return self.memory_byte_seconds / GB / HOUR

    @property
    def dollars_per_answer(self) -> Optional[float]:
        """The headline number; ``None`` when the run produced nothing."""
        return self.dollars / self.answers if self.answers else None

    def to_event(self) -> dict:
        """The journal event form (canonical JSON keys, JSON-safe)."""
        return {
            "type": "cost",
            "schema": COST_SCHEMA,
            "machines": self.machines,
            "total_seconds": self.total_seconds,
            "machine_seconds": self.machine_seconds,
            "memory_byte_seconds": self.memory_byte_seconds,
            "memory_gb_hours": self.memory_gb_hours,
            "bytes_shuffled": self.bytes_shuffled,
            "bytes_spilled": self.bytes_spilled,
            "recovery_seconds": self.recovery_seconds,
            "recovery_machine_seconds": self.recovery_machine_seconds,
            "compute_dollars": self.compute_dollars,
            "shuffle_dollars": self.shuffle_dollars,
            "memory_dollars": self.memory_dollars,
            "recovery_dollars": self.recovery_dollars,
            "dollars": self.dollars,
            "answers": self.answers,
            "dollars_per_answer": self.dollars_per_answer,
            "rates": self.rates,
        }

    @classmethod
    def from_event(cls, event: dict) -> "CostReport":
        """Rebuild a report from its journal event."""
        return cls(
            machines=int(event["machines"]),
            total_seconds=float(event["total_seconds"]),
            machine_seconds=float(event["machine_seconds"]),
            memory_byte_seconds=float(event["memory_byte_seconds"]),
            bytes_shuffled=float(event["bytes_shuffled"]),
            bytes_spilled=float(event["bytes_spilled"]),
            recovery_seconds=float(event["recovery_seconds"]),
            recovery_machine_seconds=float(event["recovery_machine_seconds"]),
            compute_dollars=float(event["compute_dollars"]),
            shuffle_dollars=float(event["shuffle_dollars"]),
            memory_dollars=float(event["memory_dollars"]),
            recovery_dollars=float(event["recovery_dollars"]),
            dollars=float(event["dollars"]),
            answers=int(event["answers"]),
            rates=dict(event["rates"]),
        )


def _scalar(events: Sequence[dict], name: str) -> float:
    for event in events:
        if (
            event.get("type") == "metric"
            and event.get("name") == name
            and event.get("kind") != "histogram"
        ):
            return float(event["value"])
    return 0.0


def cost_report_from_events(
    events: Sequence[dict],
    model: CostModel = DEFAULT_COST_MODEL,
) -> Optional[CostReport]:
    """Fold journal events into a :class:`CostReport`.

    Returns ``None`` for event streams that are not engine runs (the
    scheduler's host-clock journal, partial streams): billing needs the
    meta event's ``machines`` and ``total_time``.
    """
    if not events:
        return None
    meta = events[0]
    if meta.get("type") != "meta":
        return None
    if "machines" not in meta or "total_time" not in meta:
        return None
    machines = int(meta["machines"])  # type: ignore[arg-type]
    total_seconds = float(meta["total_time"])  # type: ignore[arg-type]

    spilled = 0.0
    for event in events:
        if event.get("type") == "span" and event.get("name") in _STORAGE_SPANS:
            spilled += float(event.get("args", {}).get("bytes", 0.0))

    memory_byte_seconds = _scalar(events, "memory_byte_seconds")
    bytes_shuffled = _scalar(events, "bytes_shuffled")
    recovery_seconds = _scalar(events, "recovery_seconds")

    machine_seconds = machines * total_seconds
    recovery_machine_seconds = machines * recovery_seconds
    compute_dollars = machine_seconds / HOUR * model.dollars_per_machine_hour
    shuffle_dollars = bytes_shuffled / GB * model.dollars_per_gb_shuffled
    memory_dollars = (
        memory_byte_seconds / GB / HOUR * model.dollars_per_gb_hour_memory
    )
    recovery_dollars = (
        recovery_machine_seconds / HOUR * model.dollars_per_machine_hour
    )
    return CostReport(
        machines=machines,
        total_seconds=total_seconds,
        machine_seconds=machine_seconds,
        memory_byte_seconds=memory_byte_seconds,
        bytes_shuffled=bytes_shuffled,
        bytes_spilled=spilled,
        recovery_seconds=recovery_seconds,
        recovery_machine_seconds=recovery_machine_seconds,
        compute_dollars=compute_dollars,
        shuffle_dollars=shuffle_dollars,
        memory_dollars=memory_dollars,
        recovery_dollars=recovery_dollars,
        dollars=compute_dollars + shuffle_dollars + memory_dollars,
        answers=1 if meta.get("status") == "ok" else 0,
        rates=model.rates(),
    )


def cost_event_from_events(
    events: Sequence[dict],
    model: CostModel = DEFAULT_COST_MODEL,
) -> Optional[dict]:
    """The journal-ready cost event, or ``None`` for non-run streams."""
    report = cost_report_from_events(events, model)
    return report.to_event() if report is not None else None


def aggregate_costs(reports: List[CostReport]) -> Dict[str, float]:
    """Grid-level totals the executor folds into its scheduler journal."""
    totals = {
        "dollars": 0.0,
        "machine_seconds": 0.0,
        "memory_gb_hours": 0.0,
        "gb_shuffled": 0.0,
        "recovery_seconds": 0.0,
        "answers": 0.0,
    }
    for report in reports:
        totals["dollars"] += report.dollars
        totals["machine_seconds"] += report.machine_seconds
        totals["memory_gb_hours"] += report.memory_gb_hours
        totals["gb_shuffled"] += report.bytes_shuffled / GB
        totals["recovery_seconds"] += report.recovery_seconds
        totals["answers"] += report.answers
    return totals
