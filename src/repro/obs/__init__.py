"""repro.obs: span tracing, metrics, and run journals for the simulation.

The observability layer the paper's methodology implies (§4.2: per-
second resource logs on every machine, analysed offline): every run can
produce a deterministic JSONL journal of nested simulated-clock spans
(run → phase → superstep → shuffle/compute/barrier) plus a typed
metrics registry, exportable as a Chrome/Perfetto trace, a terminal
timeline, or a per-superstep CSV.

Two invariants hold the layer honest:

* **Simulated clock only.** Spans read the cluster clock; recording a
  trace can never change a result (same seed → byte-identical journal).
* **One wall-clock door.** Profiling the simulator itself goes through
  :mod:`repro.obs.hostclock`, the single module RPL001 allowlists.
"""

from .cost import (
    CostModel,
    CostReport,
    DEFAULT_COST_MODEL,
    aggregate_costs,
    cost_event_from_events,
    cost_report_from_events,
)
from .hostclock import HostTimer, host_now, host_sleep
from .journal import Journal, JournalError, build_journal
from .metrics import (
    Counter,
    ExtrasView,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
)
from .observation import RunObservation
from .report import (
    PerfDiff,
    PerfSource,
    ReportError,
    classify_path,
    diff_sources,
    load_source,
    render_report,
)
from .export import (
    chrome_trace,
    one_line_summary,
    render_summary,
    superstep_rows,
    write_chrome,
    write_superstep_csv,
)
from .spans import Span, SpanError, Tracer

__all__ = [
    "Span",
    "SpanError",
    "Tracer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "ExtrasView",
    "RunObservation",
    "Journal",
    "JournalError",
    "build_journal",
    "CostModel",
    "CostReport",
    "DEFAULT_COST_MODEL",
    "aggregate_costs",
    "cost_event_from_events",
    "cost_report_from_events",
    "chrome_trace",
    "write_chrome",
    "superstep_rows",
    "write_superstep_csv",
    "render_summary",
    "one_line_summary",
    "PerfDiff",
    "PerfSource",
    "ReportError",
    "classify_path",
    "diff_sources",
    "load_source",
    "render_report",
    "HostTimer",
    "host_now",
    "host_sleep",
]
