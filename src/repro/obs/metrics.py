"""Typed metrics registry: counters, gauges, histograms.

Replaces the ad-hoc ``result.extras`` dict as the canonical store for a
run's quantities (``messages_sent``, ``bytes_shuffled``,
``replication_factor``, per-superstep memory, ...). Each name is bound
to exactly one metric type for the life of a registry — re-registering
``messages_sent`` as a gauge after it was a counter is a bug the
registry raises on, where a plain dict would silently overwrite.

:class:`ExtrasView` keeps the old surface alive: it is a mutable
mapping over the registry's scalar metrics, so every existing
``result.extras["checkpoints"] += 1`` call keeps working while the
values land in the registry and therefore in the run journal.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, MutableMapping, Optional, Union

__all__ = [
    "MetricError",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ExtrasView",
]


class MetricError(TypeError):
    """A metric name was re-registered under a different type."""


class Counter:
    """A monotonically increasing total (events, bytes, messages)."""

    kind = "counter"
    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> float:
        """Add to the total; counters never go down."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease by {amount}")
        self.value += amount
        return self.value

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A value that can move both ways (replication factor, skew)."""

    kind = "gauge"
    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> float:
        """Replace the current value."""
        self.value = float(value)
        return self.value

    def inc(self, amount: float = 1.0) -> float:
        """Adjust the current value by ``amount`` (may be negative)."""
        self.value += amount
        return self.value

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, {self.value})"


class Histogram:
    """A distribution (per-superstep seconds, memory, active vertices).

    Runs observe at most a few thousand points, so the raw observations
    are kept; summaries are computed on demand.
    """

    kind = "histogram"
    __slots__ = ("name", "observations")

    def __init__(self, name: str) -> None:
        self.name = name
        self.observations: List[float] = []

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.observations.append(float(value))

    @property
    def count(self) -> int:
        return len(self.observations)

    @property
    def total(self) -> float:
        return sum(self.observations)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.observations else 0.0

    @property
    def minimum(self) -> float:
        return min(self.observations) if self.observations else 0.0

    @property
    def maximum(self) -> float:
        return max(self.observations) if self.observations else 0.0

    def summary(self) -> Dict[str, float]:
        """The journal's flattened form."""
        return {
            "count": float(self.count),
            "sum": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, n={self.count}, mean={self.mean:.3g})"


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """All of one run's metrics, typed and name-addressed."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def _get_or_create(self, name: str, factory) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory(name)
            self._metrics[name] = metric
            return metric
        if not isinstance(metric, factory):
            raise MetricError(
                f"metric {name!r} is a {metric.kind}, not a "
                f"{factory.kind}"  # type: ignore[attr-defined]
            )
        return metric

    def counter(self, name: str) -> Counter:
        """Fetch or create the counter ``name``."""
        return self._get_or_create(name, Counter)  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:
        """Fetch or create the gauge ``name``."""
        return self._get_or_create(name, Gauge)  # type: ignore[return-value]

    def histogram(self, name: str) -> Histogram:
        """Fetch or create the histogram ``name``."""
        return self._get_or_create(name, Histogram)  # type: ignore[return-value]

    def get(self, name: str) -> Optional[Metric]:
        """The metric registered under ``name``, or None."""
        return self._metrics.get(name)

    def remove(self, name: str) -> None:
        """Drop a metric (the extras view's ``del``)."""
        del self._metrics[name]

    def scalar_names(self) -> List[str]:
        """Sorted names of every counter and gauge."""
        return sorted(
            name for name, m in self._metrics.items()
            if not isinstance(m, Histogram)
        )

    def value(self, name: str) -> float:
        """Scalar value of a counter or gauge; KeyError otherwise."""
        metric = self._metrics.get(name)
        if metric is None or isinstance(metric, Histogram):
            raise KeyError(name)
        return metric.value

    def histograms(self) -> List[Histogram]:
        """Every histogram, sorted by name."""
        return sorted(
            (m for m in self._metrics.values() if isinstance(m, Histogram)),
            key=lambda m: m.name,
        )

    def as_dict(self) -> Dict[str, float]:
        """Flat name→float view: scalars plus histogram summaries."""
        flat: Dict[str, float] = {}
        for name in self.scalar_names():
            flat[name] = self.value(name)
        for hist in self.histograms():
            for key, value in hist.summary().items():
                flat[f"{hist.name}.{key}"] = value
        return flat

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def __repr__(self) -> str:
        return f"MetricsRegistry({len(self._metrics)} metrics)"


class ExtrasView(MutableMapping):
    """The backward-compatible ``result.extras`` mapping.

    Reads and writes go straight to the registry's scalars: assigning a
    new key creates a gauge, assigning an existing counter or gauge
    updates its value. Histograms are not part of the view (they have
    no single value); use the registry directly for those.
    """

    __slots__ = ("registry",)

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry

    def __getitem__(self, key: str) -> float:
        return self.registry.value(key)

    def __setitem__(self, key: str, value: float) -> None:
        metric = self.registry.get(key)
        if isinstance(metric, (Counter, Gauge)):
            metric.value = float(value)
        elif metric is None:
            self.registry.gauge(key).set(float(value))
        else:
            raise MetricError(f"extras key {key!r} is a histogram, not a scalar")

    def __delitem__(self, key: str) -> None:
        if key not in self.registry or isinstance(self.registry.get(key), Histogram):
            raise KeyError(key)
        self.registry.remove(key)

    def __iter__(self) -> Iterator[str]:
        return iter(self.registry.scalar_names())

    def __len__(self) -> int:
        return len(self.registry.scalar_names())

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Mapping):
            return dict(self) == dict(other)
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    def __repr__(self) -> str:
        return f"ExtrasView({dict(self)!r})"
