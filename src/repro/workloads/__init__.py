"""The paper's four workloads plus reference oracles."""

from .base import SuperstepStats, Workload, WorkloadKind, WorkloadState
from .cdlp import CDLP, reference_cdlp
from .pagerank import DAMPING, PageRank
from .reference import (
    reference_khop,
    reference_pagerank,
    reference_sssp,
    reference_wcc,
)
from .khop import KHop
from .sssp import SSSP
from .wcc import WCC, HashToMinWCC

__all__ = [
    "Workload",
    "WorkloadKind",
    "WorkloadState",
    "SuperstepStats",
    "CDLP",
    "reference_cdlp",
    "PageRank",
    "DAMPING",
    "WCC",
    "HashToMinWCC",
    "SSSP",
    "KHop",
    "reference_pagerank",
    "reference_wcc",
    "reference_sssp",
    "reference_khop",
]
