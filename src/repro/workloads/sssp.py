"""Single-source shortest paths and K-hop (§3.3).

SSSP is a BFS-style traversal: at iteration i the frontier holds the
vertices i hops from the source, so the iteration count is bounded by
the source's eccentricity — O(diameter). K-hop is SSSP truncated at K
(the paper fixes K=3, the friends-of-friends regime), which is what
makes it diameter-insensitive and thus cheap even on the road network.

Both use one fixed source per dataset, matching the paper's protocol
of a single random-but-fixed start vertex (§3.3). Unreachable vertices
keep distance infinity.
"""

from __future__ import annotations

import numpy as np

from ..graph.structures import Graph
from .base import SuperstepStats, Workload, WorkloadKind, WorkloadState

__all__ = ["SSSP", "KHop"]


class SSSP(Workload):
    """Breadth-first single-source shortest paths over out-edges."""

    name = "sssp"
    kind = WorkloadKind.TRAVERSAL
    needs_reverse_edges = False
    combinable = True

    def __init__(self, source: int = 0) -> None:
        self.source = source

    def init_state(self, graph: Graph) -> WorkloadState:
        """Distance 0 at the source, infinity elsewhere."""
        if not 0 <= self.source < max(1, graph.num_vertices):
            raise ValueError(
                f"source {self.source} out of range for {graph.num_vertices} vertices"
            )
        values = np.full(graph.num_vertices, np.inf, dtype=np.float64)
        active = np.zeros(graph.num_vertices, dtype=bool)
        if graph.num_vertices:
            values[self.source] = 0.0
            active[self.source] = True
        return WorkloadState(values=values, active=active)

    def superstep(self, graph: Graph, state: WorkloadState) -> SuperstepStats:
        """Frontier vertices relax their out-edges."""
        dist = state.values
        src = graph.edge_sources()
        dst = graph.edge_targets()
        sel = state.active[src]

        new_dist = dist.copy()
        np.minimum.at(new_dist, dst[sel], dist[src[sel]] + 1.0)
        messages = int(np.count_nonzero(sel))

        improved = new_dist < dist
        updates = int(np.count_nonzero(improved))
        active_before = int(np.count_nonzero(state.active))
        state.values = new_dist
        state.active = improved
        state.iteration += 1
        state.done = updates == 0

        stats = SuperstepStats(
            iteration=state.iteration,
            active_vertices=active_before,
            messages=messages,
            updates=updates,
            converged=state.done,
        )
        state.history.append(stats)
        return stats


class KHop(SSSP):
    """SSSP truncated at K hops (K=3 in all the paper's experiments)."""

    name = "khop"

    def __init__(self, source: int = 0, k: int = 3) -> None:
        super().__init__(source=source)
        if k < 0:
            raise ValueError("k must be non-negative")
        self.k = k

    def init_state(self, graph: Graph) -> WorkloadState:
        """K=0 answers immediately: only the source is reachable."""
        state = super().init_state(graph)
        if self.k == 0:
            state.done = True
        return state

    def superstep(self, graph: Graph, state: WorkloadState) -> SuperstepStats:
        """A BFS step, stopping after K iterations regardless of frontier."""
        stats = super().superstep(graph, state)
        if state.iteration >= self.k:
            state.done = True
            stats = SuperstepStats(
                iteration=stats.iteration,
                active_vertices=stats.active_vertices,
                messages=stats.messages,
                updates=stats.updates,
                converged=True,
            )
            state.history[-1] = stats
        return stats

    def reachable_count(self, state: WorkloadState) -> int:
        """Vertices within K hops of the source (the query's answer size)."""
        return int(np.count_nonzero(np.isfinite(state.values)))

    def result_bytes_from_state(self, graph: Graph, state: WorkloadState) -> int:
        """K-hop answers are small: only reached vertices are written."""
        return self.result_bytes_per_vertex() * max(1, self.reachable_count(state))
