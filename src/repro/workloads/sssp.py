"""Single-source shortest paths (§3.3).

SSSP is a BFS-style traversal: at iteration i the frontier holds the
vertices i hops from the source, so the iteration count is bounded by
the source's eccentricity — O(diameter). The paper's fourth workload,
K-hop, subclasses this traversal truncated at K hops; it lives in
:mod:`repro.workloads.khop`.

SSSP uses one fixed source per dataset, matching the paper's protocol
of a single random-but-fixed start vertex (§3.3). Unreachable vertices
keep distance infinity.
"""

from __future__ import annotations

import numpy as np

from ..graph.structures import Graph
from .base import SuperstepStats, Workload, WorkloadKind, WorkloadState

__all__ = ["SSSP"]


class SSSP(Workload):
    """Breadth-first single-source shortest paths over out-edges."""

    name = "sssp"
    kind = WorkloadKind.TRAVERSAL
    needs_reverse_edges = False
    combinable = True

    def __init__(self, source: int = 0) -> None:
        self.source = source

    def init_state(self, graph: Graph) -> WorkloadState:
        """Distance 0 at the source, infinity elsewhere."""
        if not 0 <= self.source < max(1, graph.num_vertices):
            raise ValueError(
                f"source {self.source} out of range for {graph.num_vertices} vertices"
            )
        values = np.full(graph.num_vertices, np.inf, dtype=np.float64)
        active = np.zeros(graph.num_vertices, dtype=bool)
        if graph.num_vertices:
            values[self.source] = 0.0
            active[self.source] = True
        return WorkloadState(values=values, active=active)

    def superstep(self, graph: Graph, state: WorkloadState) -> SuperstepStats:
        """Frontier vertices relax their out-edges."""
        dist = state.values
        src = graph.edge_sources()
        dst = graph.edge_targets()
        sel = state.active[src]

        new_dist = dist.copy()
        np.minimum.at(new_dist, dst[sel], dist[src[sel]] + 1.0)
        messages = int(np.count_nonzero(sel))

        improved = new_dist < dist
        updates = int(np.count_nonzero(improved))
        active_before = int(np.count_nonzero(state.active))
        state.values = new_dist
        state.active = improved
        state.iteration += 1
        state.done = updates == 0

        stats = SuperstepStats(
            iteration=state.iteration,
            active_vertices=active_before,
            messages=messages,
            updates=updates,
            converged=state.done,
        )
        state.history.append(stats)
        return stats

