"""Plain sequential reference implementations — the test oracles.

These are deliberately simple, direct implementations of the textbook
algorithms; every engine's answers are validated against them. They are
*not* the single-thread COST implementations (those live in
:mod:`repro.engines.single_thread` and carry the GAP suite's
optimizations, §5.13).
"""

from __future__ import annotations

from collections import deque
import numpy as np

from ..graph.structures import Graph
from .pagerank import DAMPING, INITIAL_RANK

__all__ = [
    "reference_pagerank",
    "reference_wcc",
    "reference_sssp",
    "reference_khop",
]


def reference_pagerank(
    graph: Graph, iterations: int = 0, tolerance: float = INITIAL_RANK
) -> np.ndarray:
    """Power iteration; fixed ``iterations`` if > 0, else tolerance stop."""
    n = graph.num_vertices
    ranks = np.full(n, INITIAL_RANK, dtype=np.float64)
    out_deg = graph.out_degrees().astype(np.float64)
    src = graph.edge_sources()
    dst = graph.edge_targets()
    step = 0
    while True:
        contrib = np.zeros(n)
        nz = out_deg > 0
        contrib[nz] = ranks[nz] / out_deg[nz]
        sums = np.zeros(n)
        np.add.at(sums, dst, contrib[src])
        new_ranks = DAMPING + (1.0 - DAMPING) * sums
        change = np.abs(new_ranks - ranks).max() if n else 0.0
        ranks = new_ranks
        step += 1
        if iterations > 0:
            if step >= iterations:
                return ranks
        elif change < tolerance:
            return ranks


def reference_wcc(graph: Graph) -> np.ndarray:
    """Component labels = min vertex id per weakly connected component."""
    n = graph.num_vertices
    labels = np.full(n, -1, dtype=np.int64)
    for start in range(n):
        if labels[start] >= 0:
            continue
        members = []
        stack = [start]
        labels[start] = start
        while stack:
            v = stack.pop()
            members.append(v)
            for u in np.concatenate([graph.out_neighbors(v), graph.in_neighbors(v)]):
                if labels[u] < 0:
                    labels[u] = start
                    stack.append(int(u))
        smallest = min(members)
        for v in members:
            labels[v] = smallest
    return labels


def reference_sssp(graph: Graph, source: int) -> np.ndarray:
    """BFS hop distances over out-edges; inf where unreachable."""
    dist = np.full(graph.num_vertices, np.inf)
    if graph.num_vertices == 0:
        return dist
    dist[source] = 0.0
    queue = deque([source])
    while queue:
        v = queue.popleft()
        for u in graph.out_neighbors(v):
            if not np.isfinite(dist[u]):
                dist[u] = dist[v] + 1.0
                queue.append(int(u))
    return dist


def reference_khop(graph: Graph, source: int, k: int = 3) -> np.ndarray:
    """BFS distances truncated at k hops; inf beyond the horizon."""
    dist = reference_sssp(graph, source)
    dist[dist > k] = np.inf
    return dist
