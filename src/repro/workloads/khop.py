"""K-hop neighbourhood queries (§3.3) — the paper's fourth workload.

K-hop is SSSP truncated at K hops (the paper fixes K=3, the
friends-of-friends regime): at iteration i the frontier holds the
vertices exactly i hops from the source, so the query runs K supersteps
regardless of graph diameter — which is what makes it cheap even on the
road network, where full SSSP pays hundreds of iterations.

Like SSSP it uses one fixed source per dataset (a single
random-but-fixed start vertex, §3.3), and its answers validate against
:func:`repro.workloads.reference.reference_khop`. The answer array is
the truncated distance vector: hop counts within the horizon, infinity
beyond it.
"""

from __future__ import annotations

import numpy as np

from ..graph.structures import Graph
from .base import SuperstepStats, WorkloadState
from .sssp import SSSP

__all__ = ["KHop"]


class KHop(SSSP):
    """SSSP truncated at K hops (K=3 in all the paper's experiments)."""

    name = "khop"

    def __init__(self, source: int = 0, k: int = 3) -> None:
        super().__init__(source=source)
        if k < 0:
            raise ValueError("k must be non-negative")
        self.k = k

    def init_state(self, graph: Graph) -> WorkloadState:
        """K=0 answers immediately: only the source is reachable."""
        state = super().init_state(graph)
        if self.k == 0:
            state.done = True
        return state

    def superstep(self, graph: Graph, state: WorkloadState) -> SuperstepStats:
        """A BFS step, stopping after K iterations regardless of frontier."""
        stats = super().superstep(graph, state)
        if state.iteration >= self.k:
            state.done = True
            stats = SuperstepStats(
                iteration=stats.iteration,
                active_vertices=stats.active_vertices,
                messages=stats.messages,
                updates=stats.updates,
                converged=True,
            )
            state.history[-1] = stats
        return stats

    def reachable_count(self, state: WorkloadState) -> int:
        """Vertices within K hops of the source (the query's answer size)."""
        return int(np.count_nonzero(np.isfinite(state.values)))

    def result_bytes_from_state(self, graph: Graph, state: WorkloadState) -> int:
        """K-hop answers are small: only reached vertices are written."""
        return self.result_bytes_per_vertex() * max(1, self.reachable_count(state))
