"""Weakly connected components via HashMin (§3.2), plus hash-to-min.

HashMin labels every vertex with the minimum vertex id reachable from
it ignoring edge direction: each vertex starts as its own component,
propagates its label to all neighbours, keeps the minimum it hears, and
the fixpoint is reached after O(diameter) iterations — which is exactly
why WCC is hopeless on the road network for most systems (§5.8).

The paper found several systems' WCC *incorrect* because they only
propagated along out-edges; it fixed Blogel and Giraph by adding a
reverse-edge discovery task to the first superstep. That first
superstep cannot use the message combiner (messages carry "who are my
in-neighbours", not labels) and doubles the memory — both modelled by
the ``needs_reverse_edges`` flag engines consume.

``HashToMin`` is the GraphFrames variant (§5.6) that converges in
roughly half the iterations by propagating through a growing
neighbourhood set, at the price of larger messages.
"""

from __future__ import annotations

import numpy as np

from ..graph.structures import Graph
from .base import SuperstepStats, Workload, WorkloadKind, WorkloadState

__all__ = ["WCC", "HashToMinWCC"]


class WCC(Workload):
    """HashMin weakly-connected-components."""

    name = "wcc"
    kind = WorkloadKind.TRAVERSAL   # O(diameter) iterations
    needs_reverse_edges = True
    combinable = True               # except the first superstep (engines model it)

    def init_state(self, graph: Graph) -> WorkloadState:
        """Every vertex is its own component and starts active."""
        values = np.arange(graph.num_vertices, dtype=np.float64)
        active = np.ones(graph.num_vertices, dtype=bool)
        return WorkloadState(values=values, active=active)

    def superstep(self, graph: Graph, state: WorkloadState) -> SuperstepStats:
        """Active vertices push labels both ways; everyone keeps the min."""
        labels = state.values
        src = graph.edge_sources()
        dst = graph.edge_targets()
        active = state.active

        new_labels = labels.copy()
        # Forward direction: src -> dst.
        sel = active[src]
        np.minimum.at(new_labels, dst[sel], labels[src[sel]])
        # Reverse direction: dst -> src (the in-neighbour propagation).
        sel_r = active[dst]
        np.minimum.at(new_labels, src[sel_r], labels[dst[sel_r]])
        messages = int(np.count_nonzero(sel) + np.count_nonzero(sel_r))

        changed = new_labels < labels
        updates = int(np.count_nonzero(changed))
        state.values = new_labels
        state.active = changed
        state.iteration += 1
        state.done = updates == 0

        stats = SuperstepStats(
            iteration=state.iteration,
            active_vertices=int(np.count_nonzero(active)),
            messages=messages,
            updates=updates,
            converged=state.done,
        )
        state.history.append(stats)
        return stats

    def result_bytes_per_vertex(self) -> int:
        """vertex id + component id."""
        return 16


class HashToMinWCC(WCC):
    """Hash-to-min: fewer iterations, bigger messages (Kiveris et al.).

    Each active vertex sends the component minimum to *all* members it
    knows and the member list to the minimum, roughly squaring the
    reach per iteration. We model the iteration-count reduction by
    propagating labels two hops per superstep; message volume doubles.
    """

    name = "wcc-hash-to-min"

    def superstep(self, graph: Graph, state: WorkloadState) -> SuperstepStats:
        """Two HashMin half-steps fused into one logical superstep."""
        active_before = int(np.count_nonzero(state.active))
        iteration_before = state.iteration
        first = super().superstep(graph, state)
        if state.done:
            return first
        second = super().superstep(graph, state)
        # Collapse the two half-steps into one reported superstep.
        state.iteration = iteration_before + 1
        state.history.pop()
        state.history.pop()
        stats = SuperstepStats(
            iteration=state.iteration,
            active_vertices=active_before,
            messages=first.messages + second.messages,
            updates=first.updates + second.updates,
            converged=state.done,
        )
        state.history.append(stats)
        return stats
