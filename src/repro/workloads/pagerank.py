"""PageRank (§3.1), with every variant the paper compares.

* **Stopping criterion** — ``tolerance`` (converge when the maximum
  rank change drops below the initial rank, the paper's definition) or
  ``iterations`` (a fixed count, the "-I" configurations in §5).
* **Exact vs approximate** (§5.2) — exact keeps every vertex computing
  each superstep; approximate lets converged vertices opt out (only
  GraphLab supports this; its gather still reads inactive neighbours,
  which is also why its memory footprint grows).
* **Self-edge handling** (§3.1.1) — GraphLab drops self-edges, so its
  ranks are wrong on graphs that have them; engines model that by
  running this workload on :meth:`Graph.without_self_edges`.

The recurrence, with delta = 0.15 and initial rank 1:
``pr(v) = delta + (1 - delta) * sum(pr(u) / out_degree(u))`` over in-edges.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..graph.structures import Graph
from .base import SuperstepStats, Workload, WorkloadKind, WorkloadState

__all__ = ["PageRank", "DAMPING"]

DAMPING = 0.15          # the paper's delta
INITIAL_RANK = 1.0


class PageRank(Workload):
    """Synchronous PageRank with configurable stop mode and approximation."""

    name = "pagerank"
    kind = WorkloadKind.ANALYTIC
    needs_reverse_edges = False
    combinable = True

    def __init__(
        self,
        stop_mode: str = "tolerance",
        max_iterations: int = 30,
        tolerance: float = INITIAL_RANK,
        approximate: bool = False,
        approx_threshold: Optional[float] = None,
    ) -> None:
        if stop_mode not in ("tolerance", "iterations"):
            raise ValueError(f"unknown stop_mode {stop_mode!r}")
        self.stop_mode = stop_mode
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.approximate = approximate
        # Approximate mode deactivates vertices whose change is below
        # this (defaults to the convergence tolerance).
        self.approx_threshold = (
            approx_threshold if approx_threshold is not None else tolerance
        )

    def init_state(self, graph: Graph) -> WorkloadState:
        """All vertices start at rank 1 and active."""
        values = np.full(graph.num_vertices, INITIAL_RANK, dtype=np.float64)
        active = np.ones(graph.num_vertices, dtype=bool)
        state = WorkloadState(values=values, active=active)
        state.aux["out_degree"] = graph.out_degrees().astype(np.float64)
        return state

    def superstep(self, graph: Graph, state: WorkloadState) -> SuperstepStats:
        """One synchronous rank update over the whole graph."""
        ranks = state.values
        out_deg = state.aux["out_degree"]
        src = graph.edge_sources()
        dst = graph.edge_targets()

        # In exact mode every vertex sends; in approximate mode only
        # active vertices do — but *sums still see inactive neighbours'
        # last ranks* (GraphLab's gather semantics, §5.2), so the result
        # converges to the same fixpoint.
        contrib = np.zeros(graph.num_vertices, dtype=np.float64)
        nonzero = out_deg > 0
        contrib[nonzero] = ranks[nonzero] / out_deg[nonzero]
        sums = np.zeros(graph.num_vertices, dtype=np.float64)
        np.add.at(sums, dst, contrib[src])
        new_ranks = DAMPING + (1.0 - DAMPING) * sums

        if self.approximate:
            computing = state.active
            messages = int(out_deg[computing].sum())
            updated = np.where(computing, new_ranks, ranks)
        else:
            computing = np.ones(graph.num_vertices, dtype=bool)
            messages = graph.num_edges
            updated = new_ranks

        change = np.abs(updated - ranks)
        updates = int(np.count_nonzero(change > 0))
        state.values = updated
        state.iteration += 1

        if self.approximate:
            state.active = change > self.approx_threshold
        max_change = float(change.max()) if change.size else 0.0

        if self.stop_mode == "iterations":
            converged = state.iteration >= self.max_iterations
        else:
            converged = max_change < self.tolerance
            if self.approximate:
                converged = state.active_count == 0
        state.done = converged

        stats = SuperstepStats(
            iteration=state.iteration,
            active_vertices=int(np.count_nonzero(computing)),
            messages=messages,
            updates=updates,
            converged=converged,
        )
        state.history.append(stats)
        return stats
