"""Workload abstraction shared by every engine.

The paper's four workloads (PageRank, WCC, SSSP, K-hop — §3) all fit
the iterative message-passing pattern every evaluated system executes:
active vertices send values along edges, values combine at the target,
vertices update and decide whether to stay active. A
:class:`Workload` exposes that pattern once, vectorized over the whole
graph; each engine *orchestrates* the supersteps with its own cost,
memory, and communication model, using the :class:`SuperstepStats` the
workload reports (how many vertices computed, how many messages flowed,
how many values changed).

This keeps answers exact — every engine produces the true PageRank /
components / distances, checkable against the plain reference
implementations in :mod:`repro.workloads.reference`.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..graph.structures import Graph

__all__ = ["WorkloadKind", "SuperstepStats", "WorkloadState", "Workload"]


class WorkloadKind(str, enum.Enum):
    """The paper's workload taxonomy (§3)."""

    ANALYTIC = "analytic"     # iterative over all vertices (PageRank, WCC)
    TRAVERSAL = "traversal"   # frontier-based online queries (SSSP, K-hop)


@dataclass(frozen=True)
class SuperstepStats:
    """What happened in one superstep — the engine cost model's input."""

    iteration: int
    active_vertices: int      # vertices that ran compute()
    messages: int             # values sent along edges this superstep
    updates: int              # vertices whose state changed
    converged: bool           # true when this was the final superstep


@dataclass
class WorkloadState:
    """Mutable per-run state: the value array plus the active frontier."""

    values: np.ndarray
    active: np.ndarray                  # bool[num_vertices]
    iteration: int = 0
    done: bool = False
    history: List[SuperstepStats] = field(default_factory=list)
    aux: Dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def active_count(self) -> int:
        """Vertices active going into the next superstep."""
        return int(np.count_nonzero(self.active))


class Workload(abc.ABC):
    """One of the paper's graph workloads, engine-independent."""

    #: short name used in experiment grids ("pagerank", "wcc", ...)
    name: str = ""
    kind: WorkloadKind = WorkloadKind.ANALYTIC
    #: WCC must see edges in both directions; systems without native
    #: in-edge access pay a reverse-edge superstep and extra memory (§5.8)
    needs_reverse_edges: bool = False
    #: whether a message combiner applies (WCC's first superstep cannot
    #: combine because messages discover in-neighbours, §5.8)
    combinable: bool = True

    @abc.abstractmethod
    def init_state(self, graph: Graph) -> WorkloadState:
        """Fresh state for a run over ``graph``."""

    @abc.abstractmethod
    def superstep(self, graph: Graph, state: WorkloadState) -> SuperstepStats:
        """Advance one superstep, mutating ``state``; returns its stats."""

    def run_to_completion(
        self, graph: Graph, max_supersteps: int = 100_000
    ) -> WorkloadState:
        """Run supersteps until the workload converges (engine-free)."""
        state = self.init_state(graph)
        while not state.done:
            if state.iteration >= max_supersteps:
                raise RuntimeError(
                    f"{self.name} exceeded {max_supersteps} supersteps"
                )
            self.superstep(graph, state)
        return state

    def answer(self, state: WorkloadState) -> np.ndarray:
        """The per-vertex result array."""
        return state.values

    def result_bytes_per_vertex(self) -> int:
        """Serialized result size (vertex id + value)."""
        return 16

    def result_bytes(self, graph: Graph) -> int:
        """Total bytes the save phase writes."""
        return graph.num_vertices * self.result_bytes_per_vertex()

    def result_bytes_from_state(self, graph: Graph, state: WorkloadState) -> int:
        """Save size given the finished state (traversals write less)."""
        return self.result_bytes(graph)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
