"""CDLP: community detection by label propagation (extension workload).

The paper's related work leans on LDBC Graphalytics (§6), whose
workload suite adds CDLP — synchronous label propagation (Raghavan et
al.) — to the four workloads the paper runs. Because every engine here
executes generic supersteps, adding the workload makes it runnable on
all nine systems for free.

Semantics (Graphalytics' deterministic variant): every vertex starts
with its own id as label; each iteration it adopts the *most frequent*
label among its neighbours (both directions), breaking ties toward the
smallest label; stop after a fixed number of iterations or at a
fixpoint. Deterministic, so every engine produces identical
communities.
"""

from __future__ import annotations

import numpy as np

from ..graph.structures import Graph
from .base import SuperstepStats, Workload, WorkloadKind, WorkloadState

__all__ = ["CDLP", "reference_cdlp"]


def _propagate_once(graph: Graph, labels: np.ndarray) -> np.ndarray:
    """One synchronous round: most-frequent neighbour label, min-tiebreak."""
    src = graph.edge_sources()
    dst = graph.edge_targets()
    # incidence in both directions: (receiver, sender-label)
    receivers = np.concatenate([dst, src])
    senders = np.concatenate([src, dst])
    sender_labels = labels[senders]

    new_labels = labels.copy()
    if receivers.size == 0:
        return new_labels
    # group by (receiver, label) and count
    order = np.lexsort((sender_labels, receivers))
    r_sorted = receivers[order]
    l_sorted = sender_labels[order]
    group_start = np.flatnonzero(
        np.r_[True, (r_sorted[1:] != r_sorted[:-1])
              | (l_sorted[1:] != l_sorted[:-1])]
    )
    counts = np.diff(np.r_[group_start, r_sorted.size])
    group_receiver = r_sorted[group_start]
    group_label = l_sorted[group_start]
    # within each receiver pick (max count, min label); groups are
    # already sorted by label within a receiver, so a stable max by
    # count keeps the smallest label among ties
    best: dict = {}
    for receiver, label, count in zip(
        group_receiver.tolist(), group_label.tolist(), counts.tolist()
    ):
        current = best.get(receiver)
        if current is None or count > current[0]:
            best[receiver] = (count, label)
    for receiver, (_count, label) in best.items():
        new_labels[receiver] = label
    return new_labels


class CDLP(Workload):
    """Community detection by (deterministic) label propagation."""

    name = "cdlp"
    kind = WorkloadKind.ANALYTIC
    needs_reverse_edges = True    # labels flow against edge direction too
    combinable = False            # label histograms cannot be min/sum-combined

    def __init__(self, max_iterations: int = 10) -> None:
        if max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        self.max_iterations = max_iterations

    def init_state(self, graph: Graph) -> WorkloadState:
        """Every vertex is its own community."""
        values = np.arange(graph.num_vertices, dtype=np.float64)
        active = np.ones(graph.num_vertices, dtype=bool)
        return WorkloadState(values=values, active=active)

    def superstep(self, graph: Graph, state: WorkloadState) -> SuperstepStats:
        """One synchronous propagation round."""
        labels = state.values.astype(np.int64)
        new_labels = _propagate_once(graph, labels)
        changed = new_labels != labels
        updates = int(np.count_nonzero(changed))
        state.values = new_labels.astype(np.float64)
        state.active = changed
        state.iteration += 1
        state.done = updates == 0 or state.iteration >= self.max_iterations
        stats = SuperstepStats(
            iteration=state.iteration,
            active_vertices=graph.num_vertices,   # everyone histograms
            messages=2 * graph.num_edges,          # labels in both directions
            updates=updates,
            converged=state.done,
        )
        state.history.append(stats)
        return stats


def reference_cdlp(graph: Graph, max_iterations: int = 10) -> np.ndarray:
    """Plain sequential oracle with identical semantics."""
    labels = np.arange(graph.num_vertices, dtype=np.int64)
    for _ in range(max_iterations):
        new_labels = _propagate_once(graph, labels)
        if np.array_equal(new_labels, labels):
            break
        labels = new_labels
    return labels
