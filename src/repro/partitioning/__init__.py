"""Partitioning strategies: edge-cut, vertex-cut, and Voronoi blocks."""

from .edge_cut import VertexPartition, random_vertex_partition
from .vertex_cut import (
    EdgePartition,
    auto_method_for,
    auto_partition,
    grid_dimensions,
    grid_partition,
    oblivious_partition,
    pds_partition,
    pds_prime_for,
    perfect_difference_set,
    random_edge_partition,
)
from .dataset_specific import coordinate_partition, url_prefix_partition
from .voronoi import BlockPartition, voronoi_partition

__all__ = [
    "VertexPartition",
    "random_vertex_partition",
    "EdgePartition",
    "random_edge_partition",
    "grid_partition",
    "grid_dimensions",
    "pds_partition",
    "pds_prime_for",
    "perfect_difference_set",
    "oblivious_partition",
    "auto_partition",
    "auto_method_for",
    "BlockPartition",
    "voronoi_partition",
    "coordinate_partition",
    "url_prefix_partition",
]
