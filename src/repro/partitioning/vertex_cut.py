"""Vertex-cut (edge-disjoint) partitioning: GraphLab's four schemes.

GraphLab/PowerGraph assigns *edges* to machines and replicates vertices
wherever their edges land (§2.1.2). The quality metric is the
*replication factor*: the average number of machines holding a replica
of each vertex (Table 4). Four placement schemes from §4.4.1:

* **Random** — hash each edge to a machine.
* **Grid** — machines form an X x Y rectangle with |X - Y| <= 2; a vertex's
  replicas are confined to one row + column cross, so an edge goes to a
  machine in the intersection of two crosses (replication <= 2 sqrt(M)).
* **PDS** — needs M = p^2 + p + 1 for prime p; constraint sets built from
  a perfect difference set intersect in exactly one machine
  (replication <= p + 1 ~= sqrt(M)).
* **Oblivious** — greedy per-edge placement that extends existing
  replica sets only when it must.

The **Auto** mode picks PDS, then Grid, then Oblivious — the first
whose machine-count requirement holds (§5.4) — which is why GraphLab's
load time zig-zags with cluster size: 16 and 64 admit a Grid, 32 and
128 fall back to Oblivious.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..graph.structures import Graph

__all__ = [
    "EdgePartition",
    "random_edge_partition",
    "grid_partition",
    "pds_partition",
    "oblivious_partition",
    "auto_partition",
    "auto_method_for",
    "grid_dimensions",
    "pds_prime_for",
    "perfect_difference_set",
]


def _hash_ids(ids: np.ndarray, seed: int) -> np.ndarray:
    salt = np.uint64(0x9E3779B97F4A7C15 + seed)
    mixed = (ids.astype(np.uint64) + salt) * np.uint64(0xBF58476D1CE4E5B9)
    mixed ^= mixed >> np.uint64(31)
    return mixed


@dataclass(frozen=True)
class EdgePartition:
    """An assignment of every edge to one of ``num_parts`` machines."""

    graph: Graph
    num_parts: int
    part_of_edge: np.ndarray     # int64[num_edges]
    method: str

    def __post_init__(self) -> None:
        if self.part_of_edge.shape != (self.graph.num_edges,):
            raise ValueError("part_of_edge must have one entry per edge")

    def edge_counts(self) -> np.ndarray:
        """Edges stored per machine."""
        return np.bincount(self.part_of_edge, minlength=self.num_parts)

    def balance_skew(self) -> float:
        """Heaviest machine's extra edge load over an even split."""
        counts = self.edge_counts()
        total = counts.sum()
        if total == 0:
            return 0.0
        mean = total / self.num_parts
        return float(counts.max() / mean - 1.0)

    def replica_counts(self) -> np.ndarray:
        """Number of machines each vertex is replicated on (0 if isolated)."""
        src = self.graph.edge_sources()
        dst = self.graph.edge_targets()
        vertex = np.concatenate([src, dst])
        part = np.concatenate([self.part_of_edge, self.part_of_edge])
        keys = vertex * self.num_parts + part
        unique = np.unique(keys)
        counts = np.bincount(
            (unique // self.num_parts).astype(np.int64),
            minlength=self.graph.num_vertices,
        )
        return counts.astype(np.int64)

    def replication_factor(self) -> float:
        """Average replicas per non-isolated vertex (Table 4's metric)."""
        counts = self.replica_counts()
        active = counts[counts > 0]
        return float(active.mean()) if active.size else 0.0

    def vertex_master(self) -> np.ndarray:
        """The machine owning each vertex's master copy (hash-assigned)."""
        ids = np.arange(self.graph.num_vertices, dtype=np.uint64)
        return (_hash_ids(ids, 17) % np.uint64(self.num_parts)).astype(np.int64)


# -- random --------------------------------------------------------------


def random_edge_partition(graph: Graph, num_parts: int, seed: int = 0) -> EdgePartition:
    """Hash each edge to a machine."""
    if num_parts < 1:
        raise ValueError("num_parts must be positive")
    ids = np.arange(graph.num_edges, dtype=np.uint64)
    part = (_hash_ids(ids, seed) % np.uint64(num_parts)).astype(np.int64)
    return EdgePartition(graph, num_parts, part, method="random")


# -- grid ---------------------------------------------------------------


def grid_dimensions(num_parts: int, tolerance: int = 2) -> Optional[Tuple[int, int]]:
    """The most-square X x Y factorization with |X - Y| <= tolerance, if any."""
    best: Optional[Tuple[int, int]] = None
    for x in range(1, int(math.isqrt(num_parts)) + 1):
        if num_parts % x == 0:
            y = num_parts // x
            if abs(x - y) <= tolerance:
                best = (x, y)
    return best


def grid_partition(graph: Graph, num_parts: int, seed: int = 0) -> EdgePartition:
    """Grid constrained placement; requires a near-square factorization."""
    dims = grid_dimensions(num_parts)
    if dims is None:
        raise ValueError(
            f"grid partitioning needs X*Y={num_parts} with |X-Y|<=2"
        )
    rows, cols = dims
    vid = np.arange(graph.num_vertices, dtype=np.uint64)
    home = (_hash_ids(vid, seed) % np.uint64(num_parts)).astype(np.int64)
    v_row, v_col = home // cols, home % cols

    src = graph.edge_sources()
    dst = graph.edge_targets()
    # The two crosses intersect in (row_u, col_v) and (row_v, col_u);
    # pick per-edge by hash so load spreads evenly.
    cand_a = v_row[src] * cols + v_col[dst]
    cand_b = v_row[dst] * cols + v_col[src]
    eid = np.arange(graph.num_edges, dtype=np.uint64)
    pick_b = (_hash_ids(eid, seed + 1) & np.uint64(1)).astype(bool)
    part = np.where(pick_b, cand_b, cand_a).astype(np.int64)
    return EdgePartition(graph, num_parts, part, method="grid")


# -- PDS ----------------------------------------------------------------


def pds_prime_for(num_parts: int) -> Optional[int]:
    """The prime p with p^2 + p + 1 == num_parts, if one exists."""
    for p in range(2, int(math.isqrt(num_parts)) + 1):
        if p * p + p + 1 == num_parts and all(p % q for q in range(2, p)):
            return p
    return None


def perfect_difference_set(p: int) -> List[int]:
    """A perfect difference set of size p + 1 modulo p^2 + p + 1.

    Backtracking search: every non-zero residue must arise exactly once
    as a difference of two set elements (Singer difference sets exist
    for every prime p, so the search always succeeds).
    """
    modulus = p * p + p + 1
    target = [0, 1]
    used = {1, modulus - 1}

    def extend(chosen: List[int], used_diffs: set) -> Optional[List[int]]:
        if len(chosen) == p + 1:
            return chosen
        for cand in range(chosen[-1] + 1, modulus):
            diffs = set()
            ok = True
            for c in chosen:
                d1, d2 = (cand - c) % modulus, (c - cand) % modulus
                if d1 in used_diffs or d2 in used_diffs or d1 in diffs or d2 in diffs:
                    ok = False
                    break
                diffs.add(d1)
                diffs.add(d2)
            if ok:
                result = extend(chosen + [cand], used_diffs | diffs)
                if result is not None:
                    return result
        return None

    result = extend(target, set(used))
    if result is None:
        raise ValueError(f"no perfect difference set found for p={p}")
    return result


def pds_partition(graph: Graph, num_parts: int, seed: int = 0) -> EdgePartition:
    """PDS constrained placement; requires num_parts = p^2 + p + 1."""
    p = pds_prime_for(num_parts)
    if p is None:
        raise ValueError(f"PDS needs num_parts = p^2+p+1 for prime p, got {num_parts}")
    pds = perfect_difference_set(p)
    modulus = num_parts

    # For each non-zero difference d there is exactly one ordered pair
    # (s_i, s_j) in the PDS with s_i - s_j = d; the unique intersection of
    # S_u and S_v is then (s_i + u) for d = v - u.
    diff_to_si = np.zeros(modulus, dtype=np.int64)
    for si in pds:
        for sj in pds:
            if si != sj:
                diff_to_si[(si - sj) % modulus] = si
    diff_to_si[0] = pds[0]

    vid = np.arange(graph.num_vertices, dtype=np.uint64)
    home = (_hash_ids(vid, seed) % np.uint64(modulus)).astype(np.int64)
    src_home = home[graph.edge_sources()]
    dst_home = home[graph.edge_targets()]
    d = (dst_home - src_home) % modulus
    part = (diff_to_si[d] + src_home) % modulus
    return EdgePartition(graph, num_parts, part.astype(np.int64), method="pds")


# -- oblivious -----------------------------------------------------------


def oblivious_partition(
    graph: Graph, num_parts: int, seed: int = 0, imbalance_limit: float = 1.15
) -> EdgePartition:
    """Greedy heuristic placement (§4.4.1's case analysis).

    For edge (u, v) with current replica sets Su, Sv: pick the
    least-loaded machine in Su ∩ Sv, else in the non-empty one of Su/Sv,
    else in Su ∪ Sv, else anywhere. Like PowerGraph's implementation,
    a load guard overrides locality when the chosen machine would exceed
    ``imbalance_limit`` x the average load — without it a sequential
    greedy collapses the whole graph onto a handful of machines (the
    real system avoids that because each machine places its own edge
    stream concurrently).
    """
    if num_parts < 1:
        raise ValueError("num_parts must be positive")
    replicas: List[set] = [set() for _ in range(graph.num_vertices)]
    loads = np.zeros(num_parts, dtype=np.int64)
    part = np.empty(graph.num_edges, dtype=np.int64)
    src = graph.edge_sources().tolist()
    dst = graph.edge_targets().tolist()
    for e, (u, v) in enumerate(zip(src, dst)):
        su, sv = replicas[u], replicas[v]
        both = su & sv
        if both:
            candidates = both
        elif su and not sv:
            candidates = su
        elif sv and not su:
            candidates = sv
        elif su or sv:
            candidates = su | sv
        else:
            candidates = None
        if candidates is None:
            choice = int(loads.argmin())
        else:
            choice = min(candidates, key=lambda m: (loads[m], m))
            capacity = imbalance_limit * (e + 1) / num_parts
            if loads[choice] + 1 > capacity:
                choice = int(loads.argmin())
        part[e] = choice
        loads[choice] += 1
        su.add(choice)
        sv.add(choice)
    return EdgePartition(graph, num_parts, part, method="oblivious")


# -- auto ----------------------------------------------------------------


def auto_method_for(num_parts: int) -> str:
    """Which scheme Auto mode picks for a machine count (PDS > Grid > Oblivious)."""
    if pds_prime_for(num_parts) is not None:
        return "pds"
    if grid_dimensions(num_parts) is not None:
        return "grid"
    return "oblivious"


def auto_partition(graph: Graph, num_parts: int, seed: int = 0) -> EdgePartition:
    """GraphLab's Auto mode: the first applicable constrained scheme."""
    method = auto_method_for(num_parts)
    if method == "pds":
        return pds_partition(graph, num_parts, seed=seed)
    if method == "grid":
        return grid_partition(graph, num_parts, seed=seed)
    return oblivious_partition(graph, num_parts, seed=seed)
