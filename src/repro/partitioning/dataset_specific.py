"""Dataset-specific block partitioners the paper mentions but skips.

Blogel's paper proposes partitioners that exploit vertex properties:
2-D coordinates for road networks and URL prefixes for web graphs
(§2.3: "Additional partitioning techniques based on vertex properties
in real graphs ... have also been discussed, but we do not use these
dataset-specific techniques in this study"). This module implements
both, so the ablation benchmark can quantify what the paper's choice of
the generic GVD partitioner left on the table.

Both return the same :class:`BlockPartition` structure as the Voronoi
partitioner, so Blogel-B runs on them unchanged.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from ..graph.structures import Graph
from .voronoi import BlockPartition

__all__ = ["coordinate_partition", "url_prefix_partition"]


def _pack_blocks(
    graph: Graph, block_of: np.ndarray, num_parts: int
) -> BlockPartition:
    """Greedy bin packing of blocks onto machines (shared with GVD)."""
    num_blocks = int(block_of.max()) + 1 if block_of.size else 0
    sizes = np.bincount(block_of, minlength=num_blocks)
    machine_of_block = np.zeros(num_blocks, dtype=np.int64)
    loads = np.zeros(num_parts, dtype=np.int64)
    for b in np.argsort(sizes)[::-1]:
        m = int(loads.argmin())
        machine_of_block[b] = m
        loads[m] += sizes[b]
    return BlockPartition(
        graph=graph,
        num_parts=num_parts,
        block_of=block_of,
        machine_of_block=machine_of_block,
        rounds=0,                       # no sampling rounds needed
        aggregate_items_per_round=0,    # and no master-side aggregation:
        # the property-based assignment is computed locally per vertex,
        # so the MPI overflow of §5.1 cannot happen.
    )


def coordinate_partition(
    graph: Graph,
    num_parts: int,
    coordinates: Optional[np.ndarray] = None,
    grid_shape: Optional[Tuple[int, int]] = None,
    blocks_per_machine: int = 4,
) -> BlockPartition:
    """Spatial blocks from 2-D vertex coordinates (road networks).

    ``coordinates`` is an (n, 2) array of vertex positions. For the
    synthetic road lattice, positions can be derived from the vertex id
    given the ``grid_shape`` used to generate it. The plane is tiled
    into approximately ``num_parts * blocks_per_machine`` rectangular
    cells; each cell is one block.
    """
    n = graph.num_vertices
    if coordinates is None:
        if grid_shape is None:
            raise ValueError("need coordinates or grid_shape")
        height, width = grid_shape
        if height * width != n:
            raise ValueError(
                f"grid_shape {grid_shape} does not cover {n} vertices"
            )
        ids = np.arange(n)
        coordinates = np.column_stack([ids % width, ids // width]).astype(float)
    coordinates = np.asarray(coordinates, dtype=float)
    if coordinates.shape != (n, 2):
        raise ValueError(f"coordinates must have shape ({n}, 2)")
    if n == 0:
        return _pack_blocks(graph, np.zeros(0, dtype=np.int64), num_parts)

    target_blocks = max(1, num_parts * blocks_per_machine)
    tiles_x = max(1, int(round(math.sqrt(target_blocks))))
    tiles_y = max(1, -(-target_blocks // tiles_x))

    x, y = coordinates[:, 0], coordinates[:, 1]
    span_x = (x.max() - x.min()) or 1.0
    span_y = (y.max() - y.min()) or 1.0
    col = np.minimum(((x - x.min()) / span_x * tiles_x).astype(np.int64),
                     tiles_x - 1)
    row = np.minimum(((y - y.min()) / span_y * tiles_y).astype(np.int64),
                     tiles_y - 1)
    raw = row * tiles_x + col
    # compact block ids (drop empty tiles)
    _, block_of = np.unique(raw, return_inverse=True)
    return _pack_blocks(graph, block_of.astype(np.int64), num_parts)


def url_prefix_partition(
    graph: Graph,
    num_parts: int,
    host_of: Optional[np.ndarray] = None,
    pages_per_host: Optional[int] = None,
) -> BlockPartition:
    """Host blocks from URL prefixes (web graphs).

    Every page of a host forms one block — the natural unit of locality
    in a web crawl, where most links stay on-site. ``host_of`` maps
    each vertex to its host id; for the synthetic web graphs the host
    is derivable from the vertex id given ``pages_per_host``.
    """
    n = graph.num_vertices
    if host_of is None:
        if pages_per_host is None or pages_per_host < 1:
            raise ValueError("need host_of or a positive pages_per_host")
        host_of = np.arange(n, dtype=np.int64) // pages_per_host
    host_of = np.asarray(host_of, dtype=np.int64)
    if host_of.shape != (n,):
        raise ValueError(f"host_of must have shape ({n},)")
    if n == 0:
        return _pack_blocks(graph, np.zeros(0, dtype=np.int64), num_parts)
    _, block_of = np.unique(host_of, return_inverse=True)
    return _pack_blocks(graph, block_of.astype(np.int64), num_parts)
