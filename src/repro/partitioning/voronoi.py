"""Blogel's Graph Voronoi Diagram (GVD) block partitioner (§2.3).

Blogel-B groups vertices into connected *blocks* and runs a serial
algorithm inside each block, synchronizing blocks with BSP. Blocks come
from a Graph Voronoi Diagram: sample seed vertices, grow regions by
multi-source BFS, re-sample (with a higher rate) for vertices left
unassigned or swallowed by oversized blocks, and finally sweep leftover
vertices into their own small blocks.

The partitioner also surfaces the quantity behind the paper's MPI
failure (§5.1): after each sampling round the master aggregates block
assignment counts from every worker; on WRN the byte offsets overflow a
32-bit int inside MPI and Blogel-B crashes. :attr:`BlockPartition.
aggregate_items_per_round` is what the Blogel engine checks against
INT32 at paper scale.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from ..graph.structures import Graph

__all__ = ["BlockPartition", "voronoi_partition"]

INT32_MAX = 2 ** 31 - 1


@dataclass(frozen=True)
class BlockPartition:
    """Vertices grouped into blocks, blocks packed onto machines."""

    graph: Graph
    num_parts: int
    block_of: np.ndarray          # int64[num_vertices]
    machine_of_block: np.ndarray  # int64[num_blocks]
    rounds: int                   # sampling rounds the GVD needed
    aggregate_items_per_round: int  # items the master gathers each round

    @property
    def num_blocks(self) -> int:
        """Number of blocks."""
        return int(self.machine_of_block.shape[0])

    def machine_of_vertex(self) -> np.ndarray:
        """Machine of each vertex, via its block."""
        return self.machine_of_block[self.block_of]

    def block_sizes(self) -> np.ndarray:
        """Vertices per block."""
        return np.bincount(self.block_of, minlength=self.num_blocks)

    def machine_loads(self) -> np.ndarray:
        """Vertices per machine."""
        return np.bincount(self.machine_of_vertex(), minlength=self.num_parts)

    def balance_skew(self) -> float:
        """Heaviest machine's extra vertex load over an even split."""
        loads = self.machine_loads()
        total = loads.sum()
        if total == 0:
            return 0.0
        mean = total / self.num_parts
        return float(loads.max() / mean - 1.0)

    def cut_fraction(self) -> float:
        """Fraction of edges crossing *machines* (the network-visible cut)."""
        if self.graph.num_edges == 0:
            return 0.0
        machine = self.machine_of_vertex()
        src_m = machine[self.graph.edge_sources()]
        dst_m = machine[self.graph.edge_targets()]
        return float(np.count_nonzero(src_m != dst_m) / self.graph.num_edges)

    def block_cut_fraction(self) -> float:
        """Fraction of edges crossing blocks (drives Blogel-B messaging)."""
        if self.graph.num_edges == 0:
            return 0.0
        src_b = self.block_of[self.graph.edge_sources()]
        dst_b = self.block_of[self.graph.edge_targets()]
        return float(np.count_nonzero(src_b != dst_b) / self.graph.num_edges)

    def block_graph_edges(self) -> Tuple[np.ndarray, np.ndarray]:
        """The graph-of-blocks: unique (block, block) pairs and edge counts.

        Blogel-B's PageRank step 1 runs vertex-centric PageRank on this
        graph, with edge weights equal to the cross-edge counts (§3.1.2).
        """
        src_b = self.block_of[self.graph.edge_sources()]
        dst_b = self.block_of[self.graph.edge_targets()]
        cross = src_b != dst_b
        if not cross.any():
            return np.empty((0, 2), dtype=np.int64), np.empty(0, dtype=np.int64)
        pairs = np.column_stack([src_b[cross], dst_b[cross]])
        unique, counts = np.unique(pairs, axis=0, return_counts=True)
        return unique, counts


def _multi_source_bfs(
    graph: Graph, seeds: np.ndarray, block_of: np.ndarray, max_block_size: int
) -> None:
    """Grow Voronoi cells from seeds over the undirected adjacency."""
    sizes = np.bincount(block_of[block_of >= 0], minlength=int(block_of.max() + 1)) \
        if (block_of >= 0).any() else np.zeros(0, dtype=np.int64)
    sizes = sizes.tolist()
    frontier = deque()
    for s in seeds:
        if block_of[s] >= 0:
            continue
        block = len(sizes)
        sizes.append(1)
        block_of[s] = block
        frontier.append(int(s))
    while frontier:
        v = frontier.popleft()
        b = int(block_of[v])
        if sizes[b] >= max_block_size:
            continue
        for u in np.concatenate([graph.out_neighbors(v), graph.in_neighbors(v)]):
            if block_of[u] < 0 and sizes[b] < max_block_size:
                block_of[u] = b
                sizes[b] += 1
                frontier.append(int(u))


def voronoi_partition(
    graph: Graph,
    num_parts: int,
    sample_fraction: float = 0.005,
    max_rounds: int = 5,
    max_block_fraction: float = 0.1,
    seed: int = 0,
) -> BlockPartition:
    """Blogel's default GVD partitioning.

    ``sample_fraction`` doubles each round, as Blogel does, until every
    vertex is in a block or ``max_rounds`` is exhausted; stragglers get
    swept into small per-component blocks.
    """
    if num_parts < 1:
        raise ValueError("num_parts must be positive")
    n = graph.num_vertices
    rng = np.random.default_rng(seed)
    block_of = np.full(n, -1, dtype=np.int64)
    max_block_size = max(1, int(n * max_block_fraction))

    rounds = 0
    fraction = sample_fraction
    while rounds < max_rounds and (block_of < 0).any():
        unassigned = np.flatnonzero(block_of < 0)
        k = max(1, int(round(len(unassigned) * fraction)))
        seeds = rng.choice(unassigned, size=min(k, len(unassigned)), replace=False)
        _multi_source_bfs(graph, seeds, block_of, max_block_size)
        fraction = min(1.0, fraction * 2.0)
        rounds += 1

    # Sweep: any vertex still unassigned becomes a block with its
    # still-unassigned connected neighbourhood.
    next_block = int(block_of.max()) + 1
    for v in range(n):
        if block_of[v] >= 0:
            continue
        block_of[v] = next_block
        stack = [v]
        size = 1
        while stack and size < max_block_size:
            w = stack.pop()
            for u in np.concatenate([graph.out_neighbors(w), graph.in_neighbors(w)]):
                if block_of[u] < 0:
                    block_of[u] = next_block
                    size += 1
                    stack.append(int(u))
        next_block += 1

    num_blocks = int(block_of.max()) + 1 if n else 0
    # Greedy bin packing: largest blocks first onto the least-loaded machine.
    sizes = np.bincount(block_of, minlength=num_blocks)
    machine_of_block = np.zeros(num_blocks, dtype=np.int64)
    loads = np.zeros(num_parts, dtype=np.int64)
    for b in np.argsort(sizes)[::-1]:
        m = int(loads.argmin())
        machine_of_block[b] = m
        loads[m] += sizes[b]

    return BlockPartition(
        graph=graph,
        num_parts=num_parts,
        block_of=block_of,
        machine_of_block=machine_of_block,
        rounds=rounds,
        aggregate_items_per_round=n,
    )
