"""Random edge-cut partitioning (hash placement of vertices).

This is the scheme of Hadoop, HaLoop, Giraph, and Blogel-V (Table 1):
each vertex — with its full out-adjacency — is assigned to one machine
by hashing its id. Quality is measured by the *edge-cut fraction*
(edges whose endpoints live on different machines; each one costs a
network message per superstep) and by load balance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.structures import Graph

__all__ = ["VertexPartition", "random_vertex_partition"]


@dataclass(frozen=True)
class VertexPartition:
    """An assignment of every vertex to one of ``num_parts`` machines."""

    graph: Graph
    num_parts: int
    part_of: np.ndarray      # int64[num_vertices]

    def __post_init__(self) -> None:
        if self.part_of.shape != (self.graph.num_vertices,):
            raise ValueError("part_of must have one entry per vertex")
        if self.num_parts < 1:
            raise ValueError("num_parts must be positive")

    def vertices_of(self, part: int) -> np.ndarray:
        """Vertex ids assigned to one machine."""
        return np.flatnonzero(self.part_of == part)

    def vertex_counts(self) -> np.ndarray:
        """Vertices per machine."""
        return np.bincount(self.part_of, minlength=self.num_parts)

    def edge_counts(self) -> np.ndarray:
        """Out-edges stored per machine (edges live with their source)."""
        src_part = self.part_of[self.graph.edge_sources()]
        return np.bincount(src_part, minlength=self.num_parts)

    def cut_edges(self) -> int:
        """Edges whose endpoints are on different machines."""
        src_part = self.part_of[self.graph.edge_sources()]
        dst_part = self.part_of[self.graph.edge_targets()]
        return int(np.count_nonzero(src_part != dst_part))

    def cut_fraction(self) -> float:
        """Cut edges as a fraction of all edges — remote-message rate."""
        if self.graph.num_edges == 0:
            return 0.0
        return self.cut_edges() / self.graph.num_edges

    def balance_skew(self) -> float:
        """Extra load of the heaviest machine over a perfectly even split.

        0.0 means perfectly balanced; 0.5 means the heaviest machine
        holds 1.5x the average edge load.
        """
        counts = self.edge_counts()
        if counts.sum() == 0:
            return 0.0
        mean = counts.sum() / self.num_parts
        return float(counts.max() / mean - 1.0) if mean else 0.0


def random_vertex_partition(
    graph: Graph, num_parts: int, seed: int = 0
) -> VertexPartition:
    """Hash each vertex to a machine (the systems' Random scheme).

    A salted multiplicative hash stands in for the systems' id hashing;
    a plain ``v % num_parts`` would be suspiciously perfect on our dense
    ids.
    """
    if num_parts < 1:
        raise ValueError("num_parts must be positive")
    ids = np.arange(graph.num_vertices, dtype=np.uint64)
    salt = np.uint64(0x9E3779B97F4A7C15 + seed)
    mixed = (ids + salt) * np.uint64(0xBF58476D1CE4E5B9)
    mixed ^= mixed >> np.uint64(31)
    part = (mixed % np.uint64(num_parts)).astype(np.int64)
    return VertexPartition(graph=graph, num_parts=num_parts, part_of=part)
