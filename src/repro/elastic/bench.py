"""The elasticity benchmark: what a mid-run rescale costs, per mechanism.

Runs the tiny rescale grid — one system per Table 1 recovery mechanism
plus a second checkpointing system, scale-out and scale-in at an early
and a late superstep — and records the simulated economics next to the
host-side wall time:

* ``rescale_seconds`` / ``dollars_per_rescale`` per mechanism — the
  deterministic simulated price of elasticity (checkpoint replay vs
  migrate-only re-execution vs restart-from-zero);
* ``mean_overhead_seconds`` per direction — scale-out often *wins*
  end-to-end (the remaining supersteps run wider), scale-in always
  pays;
* ``bit_equal`` — the gate: every rescaled run must return answers
  bit-identical to its fixed-size reference.

Writes ``BENCH_elastic.json`` and appends one canonical JSON line to
``BENCH_history.jsonl``, same trajectory contract as the grid and serve
benches. Runnable as ``repro bench-elastic`` or
``python -m benchmarks.bench_elastic``.
"""

from __future__ import annotations

import argparse
import json
import os
from pathlib import Path
from typing import Dict, List, Optional

from ..obs.hostclock import host_now
from .experiment import ElasticReport, elasticity_experiment

__all__ = ["run_bench", "main", "BENCH_SCHEMA_VERSION"]

#: bump when the BENCH_elastic.json record layout changes
BENCH_SCHEMA_VERSION = 1

#: one system per recovery mechanism, plus Giraph for a second
#: checkpointing data point (the paper's Table 1 coverage)
BENCH_SYSTEMS = ("BV", "G", "HD", "V")
BENCH_DATASET_SIZE = "tiny"


def _mean_by(report: ElasticReport, key, value) -> Dict[str, float]:
    """Mean of ``value(cell)`` over completed cells, grouped by ``key``."""
    groups: Dict[str, List[float]] = {}
    for cell in report.cells:
        if cell.completed:
            groups.setdefault(key(cell), []).append(value(cell))
    return {
        name: sum(values) / len(values)
        for name, values in sorted(groups.items())
    }


def run_bench(
    jobs: Optional[int] = None,
    output: str = "BENCH_elastic.json",
    history: Optional[str] = None,
) -> dict:
    """Run the rescale grid; write its JSON record + history line.

    ``output`` holds only the latest record; each run also appends one
    canonical JSON line to ``history`` (default: ``BENCH_history.jsonl``
    next to ``output``) so the trajectory accumulates alongside the
    grid and serve benches. Pass an empty string to skip the append.
    """
    print(f"bench-elastic: rescale grid, systems {' '.join(BENCH_SYSTEMS)} "
          f"({BENCH_DATASET_SIZE} datasets)")
    start = host_now()
    report = elasticity_experiment(
        systems=BENCH_SYSTEMS,
        dataset_size=BENCH_DATASET_SIZE,
        jobs=jobs,
        cache_dir=None,
    )
    host_seconds = host_now() - start

    tolerance = {
        mechanism: {"tolerated": tolerated, "total": total}
        for mechanism, (tolerated, total)
        in sorted(report.tolerance_by_mechanism().items())
    }
    record = {
        "bench": "elastic",
        "schema_version": BENCH_SCHEMA_VERSION,
        "workload": report.workload,
        "dataset": report.dataset,
        "dataset_size": BENCH_DATASET_SIZE,
        "cluster_size": report.cluster_size,
        "seed": report.seed,
        "systems": list(BENCH_SYSTEMS),
        "cells": len(report.cells),
        "completed": sum(1 for c in report.cells if c.completed),
        "bit_equal": report.all_exact,
        "host_seconds": host_seconds,
        "host_cpus": os.cpu_count(),
        # everything below is simulated and deterministic across hosts
        "rescale_seconds_by_mechanism": _mean_by(
            report, lambda c: c.mechanism, lambda c: c.rescale_seconds
        ),
        "dollars_per_rescale": report.dollars_by_mechanism(),
        "mean_overhead_seconds": _mean_by(
            report, lambda c: c.direction, lambda c: c.overhead_seconds
        ),
        "tolerance": tolerance,
    }
    Path(output).write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n", encoding="ascii"
    )
    if history is None:
        history = str(Path(output).with_name("BENCH_history.jsonl"))
    if history:
        with open(history, "a", encoding="ascii") as fh:
            fh.write(json.dumps(record, sort_keys=True,
                                separators=(",", ":")) + "\n")
    gate = "bit-equal" if record["bit_equal"] else "ANSWER MISMATCH"
    print(
        f"  {record['completed']}/{record['cells']} rescaled cells "
        f"completed ({gate}) in {host_seconds:.2f}s host -> {output}"
        + (f" (+ history {history})" if history else "")
    )
    for mechanism, seconds in record["rescale_seconds_by_mechanism"].items():
        dollars = record["dollars_per_rescale"].get(mechanism)
        bill = f", ${dollars:.2f}/rescale" if dollars is not None else ""
        print(f"  {mechanism}: {seconds:.1f}s per rescale{bill}")
    return record


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry shared by ``repro bench-elastic`` and benchmarks/."""
    parser = argparse.ArgumentParser(
        prog="bench-elastic",
        description="Benchmark mid-run rescaling across recovery mechanisms.",
    )
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes (default: cpu count)")
    parser.add_argument("-o", "--output", default="BENCH_elastic.json",
                        help="where the JSON record goes")
    parser.add_argument("--history", default=None, metavar="FILE",
                        help="append the record here as one JSON line "
                             "(default: BENCH_history.jsonl next to the "
                             "output; pass '' to skip)")
    args = parser.parse_args(argv)
    record = run_bench(jobs=args.jobs, output=args.output,
                       history=args.history)
    return 0 if record["bit_equal"] else 1
