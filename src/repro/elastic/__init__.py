"""Elasticity: rescaling the cluster mid-computation, per Table 1 mechanism.

The paper's fault-tolerance analysis stops at crash recovery; Coimbra
et al. (PAPERS.md) argue the production question is *elasticity* — what
each computation model pays when the cluster grows or shrinks while a
job is running. This package sweeps :class:`~repro.chaos.events.ScaleOut`
/ :class:`~repro.chaos.events.ScaleIn` events across the engine lineup
(mirroring :mod:`repro.chaos.experiment`), gates every rescaled run's
answers bit-equal to its fault-free reference, and prices each rescale
in dollars through the cost record.
"""

from .experiment import (
    DEFAULT_MAGNITUDES,
    DEFAULT_SYSTEMS,
    DEFAULT_TIMINGS,
    DIRECTIONS,
    ElasticCell,
    ElasticReport,
    elasticity_experiment,
    rescale_plan,
    run_cost_dollars,
)

__all__ = [
    "DIRECTIONS",
    "DEFAULT_SYSTEMS",
    "DEFAULT_TIMINGS",
    "DEFAULT_MAGNITUDES",
    "ElasticCell",
    "ElasticReport",
    "rescale_plan",
    "run_cost_dollars",
    "elasticity_experiment",
]
