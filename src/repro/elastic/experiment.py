"""The rescale-tolerance grid: who survives elasticity, and at what price.

For each (system, direction, timing, magnitude) cell the experiment
runs a quiet reference plus a run whose plan schedules one
:class:`~repro.chaos.events.ScaleOut` or
:class:`~repro.chaos.events.ScaleIn` at a superstep derived from the
reference's iteration count — so "early" and "late" rescales land at
comparable progress points across engines whose runs differ in length.
Each cell reports:

* **tolerance** — the run completed and its answers are bit-equal to
  the reference's (the same correctness gate the chaos experiment
  uses); a scale-in past memory capacity legitimately OOMs instead;
* **rescale cost** — the simulated seconds charged under the rescale's
  ``recover`` span (priced into the journal's cost record), and the
  end-to-end dollar delta against the reference: dollars-per-rescale.

Everything executes through :func:`repro.exec.execute_specs`: cells are
cacheable (the plan, seed included, is part of the cache key), fan out
over ``--jobs``, and stay byte-deterministic across execution modes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..chaos.events import ScaleIn, ScaleOut
from ..chaos.plan import ChaosPlan
from ..core.runner import ExperimentSpec
from ..engines import make_engine
from ..engines.base import RunResult

__all__ = [
    "DIRECTIONS",
    "DEFAULT_SYSTEMS",
    "DEFAULT_TIMINGS",
    "DEFAULT_MAGNITUDES",
    "ElasticCell",
    "ElasticReport",
    "rescale_plan",
    "run_cost_dollars",
    "elasticity_experiment",
]

#: both rescale directions, in sweep order
DIRECTIONS = ("out", "in")

#: every engine family that runs the superstep loop (the single-thread
#: baseline has no cluster to resize), spanning all three Table 1
#: mechanisms: checkpoint (BB..FG), re-execution (HD, HL), none (V)
DEFAULT_SYSTEMS = ("BB", "BV", "G", "GL-S-R-I", "HD", "HL", "S", "FG", "V")

#: when the rescale fires, as a fraction of the reference's supersteps
DEFAULT_TIMINGS = (0.3, 0.7)

#: how many machines join (scale-out) or leave (scale-in)
DEFAULT_MAGNITUDES = (4,)


def rescale_plan(
    direction: str,
    magnitude: int,
    at_superstep: int,
    seed: int = 0,
    checkpoint_interval: int = 10,
) -> ChaosPlan:
    """A plan scheduling one rescale event on a superstep boundary."""
    if direction == "out":
        event = ScaleOut(n_machines=magnitude, at_superstep=at_superstep)
    elif direction == "in":
        event = ScaleIn(machines=magnitude, at_superstep=at_superstep)
    else:
        raise KeyError(
            f"unknown rescale direction {direction!r}; expected one of "
            f"{DIRECTIONS}"
        )
    return ChaosPlan(
        events=(event,), checkpoint_interval=checkpoint_interval, seed=seed
    )


def run_cost_dollars(result: RunResult) -> float:
    """The run's journal-priced dollars (0.0 when no journal exists)."""
    obs = result.observation
    if obs is None:
        return 0.0
    cost = obs.journal().cost()
    if cost is None:
        return 0.0
    return float(cost["dollars"])


@dataclass
class ElasticCell:
    """One (system, direction, timing, magnitude) cell of the grid."""

    system: str
    direction: str
    timing: float
    magnitude: int
    at_superstep: int
    clean: RunResult
    rescaled: RunResult
    #: Table 1 mechanism that priced the rescale
    mechanism: str

    @property
    def rescale_seconds(self) -> float:
        """Simulated seconds charged under the rescale's recover span."""
        return float(self.rescaled.extras.get("recovery_seconds", 0.0))

    @property
    def rescales(self) -> int:
        """Rescale events the run actually consumed."""
        return int(self.rescaled.extras.get("rescales", 0))

    @property
    def overhead_seconds(self) -> float:
        """End-to-end slowdown vs the quiet reference."""
        return self.rescaled.total_time - self.clean.total_time

    @property
    def dollars_per_rescale(self) -> float:
        """The dollar delta against the reference, per rescale event."""
        delta = run_cost_dollars(self.rescaled) - run_cost_dollars(self.clean)
        return delta / self.rescales if self.rescales else 0.0

    @property
    def answers_exact(self) -> bool:
        """The correctness gate: rescaled answers bit-equal the reference.

        Vacuously False when either run failed — an OOM under scale-in
        is a legitimate outcome and shows as the failure code instead.
        """
        if self.clean.answer is None or self.rescaled.answer is None:
            return False
        return bool(np.array_equal(self.clean.answer, self.rescaled.answer))

    @property
    def completed(self) -> bool:
        """Both runs finished (no OOM/TO under the rescale)."""
        return self.clean.ok and self.rescaled.ok

    @property
    def tolerated(self) -> bool:
        """The headline verdict: completed with bit-equal answers."""
        return self.completed and self.answers_exact

    def cell_text(self) -> str:
        """Grid cell: ``cost (+overhead)`` seconds, or the failure code."""
        if not self.rescaled.ok:
            return str(self.rescaled.failure)
        return f"{self.rescale_seconds:.0f} (+{self.overhead_seconds:.0f})"


@dataclass
class ElasticReport:
    """The full rescale-tolerance grid plus its correctness verdict."""

    workload: str
    dataset: str
    cluster_size: int
    seed: int
    cells: List[ElasticCell] = field(default_factory=list)
    clean: Dict[str, RunResult] = field(default_factory=dict)

    @property
    def all_exact(self) -> bool:
        """True when every completed rescaled run matched its reference."""
        return all(c.answers_exact for c in self.cells if c.completed)

    def mismatches(self) -> List[ElasticCell]:
        """Completed cells whose answers diverged (must be empty)."""
        return [c for c in self.cells if c.completed and not c.answers_exact]

    def tolerance_by_mechanism(self) -> Dict[str, Tuple[int, int]]:
        """Mechanism → (tolerated, total) cell counts."""
        counts: Dict[str, Tuple[int, int]] = {}
        for cell in self.cells:
            ok, total = counts.get(cell.mechanism, (0, 0))
            counts[cell.mechanism] = (ok + (1 if cell.tolerated else 0),
                                      total + 1)
        return counts

    def dollars_by_mechanism(self) -> Dict[str, float]:
        """Mechanism → mean dollars-per-rescale over completed cells."""
        sums: Dict[str, List[float]] = {}
        for cell in self.cells:
            if cell.completed and cell.rescales:
                sums.setdefault(cell.mechanism, []).append(
                    cell.dollars_per_rescale
                )
        return {
            mechanism: sum(values) / len(values)
            for mechanism, values in sums.items()
        }


def elasticity_experiment(
    systems: Sequence[str] = DEFAULT_SYSTEMS,
    workload: str = "pagerank",
    dataset: str = "twitter",
    cluster_size: int = 16,
    dataset_size: str = "small",
    directions: Sequence[str] = DIRECTIONS,
    timings: Sequence[float] = DEFAULT_TIMINGS,
    magnitudes: Sequence[int] = DEFAULT_MAGNITUDES,
    seed: int = 0,
    checkpoint_interval: int = 10,
    jobs: Optional[int] = None,
    cache_dir: Union[None, str, Path] = None,
    resume: bool = False,
    progress=None,
) -> ElasticReport:
    """Measure every system's rescale tolerance and cost across the grid.

    Runs the quiet references first (their iteration counts anchor the
    rescale supersteps), then the whole rescaled matrix in one pooled
    :func:`~repro.exec.execute_specs` call. Deterministic end to end:
    same seed ⇒ same plans ⇒ same results, byte-identical journals
    included.
    """
    from ..exec import execute_specs

    for direction in directions:
        if direction not in DIRECTIONS:
            raise KeyError(
                f"unknown rescale direction {direction!r}; expected one of "
                f"{DIRECTIONS}"
            )
    for timing in timings:
        if not 0.0 < timing < 1.0:
            raise ValueError(f"timings must be in (0, 1), got {timing!r}")
    for magnitude in magnitudes:
        if magnitude < 1:
            raise ValueError(f"magnitudes must be >= 1, got {magnitude!r}")

    base = dict(
        workloads=(workload,),
        datasets=(dataset,),
        cluster_sizes=(cluster_size,),
        dataset_size=dataset_size,
    )
    exec_kwargs = dict(
        jobs=jobs, cache=cache_dir, resume=resume, progress=progress
    )

    clean_exec = execute_specs(
        [ExperimentSpec(systems=tuple(systems), **base)], **exec_kwargs
    )
    clean = {r.system: r for r in clean_exec.results}

    specs: List[ExperimentSpec] = []
    coords: List[Tuple[str, str, float, int, int]] = []
    for system in systems:
        reference = clean[system]
        if not reference.ok or reference.iterations < 2:
            continue
        for direction in directions:
            for timing in timings:
                # land strictly inside the loop: the boundary after
                # superstep max(1, floor(iterations * timing))
                at_superstep = min(
                    reference.iterations - 1,
                    max(1, int(reference.iterations * timing)),
                )
                for magnitude in magnitudes:
                    specs.append(ExperimentSpec(
                        systems=(system,),
                        chaos=rescale_plan(
                            direction, magnitude, at_superstep,
                            seed=seed,
                            checkpoint_interval=checkpoint_interval,
                        ),
                        **base,
                    ))
                    coords.append(
                        (system, direction, timing, magnitude, at_superstep)
                    )

    rescaled_exec = execute_specs(specs, **exec_kwargs) if specs else None

    report = ElasticReport(
        workload=workload, dataset=dataset, cluster_size=cluster_size,
        seed=seed, clean=clean,
    )
    if rescaled_exec is not None:
        for (system, direction, timing, magnitude, at_superstep), rescaled \
                in zip(coords, rescaled_exec.results):
            report.cells.append(ElasticCell(
                system=system,
                direction=direction,
                timing=timing,
                magnitude=magnitude,
                at_superstep=at_superstep,
                clean=clean[system],
                rescaled=rescaled,
                mechanism=make_engine(system).fault_tolerance,
            ))
    return report
