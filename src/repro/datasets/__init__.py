"""Synthetic, paper-shaped datasets and the dataset registry."""

from .generators import powerlaw_social_graph, road_network_graph, web_host_graph
from .registry import (
    DATASET_NAMES,
    PAPER_PROFILES,
    SIZE_NAMES,
    Dataset,
    PaperProfile,
    dataset_names,
    load_dataset,
    register_dataset,
)

__all__ = [
    "powerlaw_social_graph",
    "road_network_graph",
    "web_host_graph",
    "Dataset",
    "PaperProfile",
    "DATASET_NAMES",
    "SIZE_NAMES",
    "PAPER_PROFILES",
    "load_dataset",
    "register_dataset",
    "dataset_names",
]
