"""Synthetic graph generators shaped like the paper's four datasets.

The paper uses Twitter (social), World Road Network, UK-2007-05 (web),
and ClueWeb (web) — up to 42.5 B edges. We cannot ship those, so each
generator reproduces the *performance-determining characteristics* the
paper calls out (section 4.3 and Table 3):

* power-law degree distribution with an extreme maximum degree and a
  single giant component for the social graph;
* bounded degree (max 9) and an enormous relative diameter for the road
  network;
* power-law plus strong host locality (URL-prefix clusters) for the web
  graphs.

All generators are deterministic given a seed.
"""

from __future__ import annotations

import numpy as np

from ..graph.structures import Graph

__all__ = [
    "powerlaw_social_graph",
    "road_network_graph",
    "web_host_graph",
]


def _zipf_degrees(
    rng: np.random.Generator,
    num_vertices: int,
    avg_degree: float,
    exponent: float,
    max_degree: int,
) -> np.ndarray:
    """Sample a degree sequence with a Zipf tail, rescaled to avg_degree."""
    # Pareto tail, then clip and rescale so the mean hits the target.
    raw = (rng.pareto(exponent - 1.0, size=num_vertices) + 1.0)
    raw = np.minimum(raw, max_degree)
    degrees = raw * (avg_degree / raw.mean())
    degrees = np.minimum(np.round(degrees), max_degree).astype(np.int64)
    return np.maximum(degrees, 0)


def powerlaw_social_graph(
    num_vertices: int,
    avg_degree: float = 30.0,
    exponent: float = 2.0,
    max_degree_fraction: float = 0.07,
    seed: int = 1,
    name: str = "social",
) -> Graph:
    """A Twitter-shaped graph: power-law, giant component, huge hubs.

    ``max_degree_fraction`` bounds the largest hub as a fraction of |V|
    (Twitter's max degree 2.9 M is ~7 % of its 41.65 M vertices, the
    property that breaks edge-cut partitioning in the paper).
    """
    if num_vertices < 2:
        raise ValueError("social graph needs at least 2 vertices")
    rng = np.random.default_rng(seed)
    max_degree = max(2, int(num_vertices * max_degree_fraction))
    out_deg = _zipf_degrees(rng, num_vertices, avg_degree, exponent, max_degree)

    # Preferential attachment for targets: weight ∝ (in-)popularity drawn
    # from the same power law, so in-degrees are heavy-tailed too.
    popularity = (rng.pareto(exponent - 1.0, size=num_vertices) + 1.0)
    popularity /= popularity.sum()

    total = int(out_deg.sum())
    src = np.repeat(np.arange(num_vertices, dtype=np.int64), out_deg)
    dst = rng.choice(num_vertices, size=total, p=popularity).astype(np.int64)

    # Force the top hub to actually reach max_degree followers: reassign a
    # slab of targets to vertex 0 (the "celebrity").
    hub_edges = min(max_degree, total)
    if hub_edges:
        dst[:hub_edges] = 0

    # Giant-component backbone: a random ring through every vertex makes
    # the graph weakly connected (Twitter has one large component, §4.4.1).
    ring = rng.permutation(num_vertices).astype(np.int64)
    backbone = np.column_stack([ring, np.roll(ring, -1)])

    # A few self-edges: the paper's real graphs contain them and they are
    # what breaks GraphLab's PageRank (§3.1.1).
    num_self = max(1, num_vertices // 200)
    self_ids = rng.choice(num_vertices, size=num_self, replace=False).astype(np.int64)
    self_edges = np.column_stack([self_ids, self_ids])

    edges = np.concatenate([np.column_stack([src, dst]), backbone, self_edges])
    return Graph(num_vertices, edges, name=name)


def road_network_graph(
    width: int,
    height: int,
    missing_fraction: float = 0.03,
    extra_fraction: float = 0.01,
    seed: int = 2,
    name: str = "road",
) -> Graph:
    """A road-network-shaped graph: a sparse 2-D lattice strip.

    Vertices are grid intersections; edges run both directions between
    neighbors. Degrees are bounded (≤ 8 before extras, ≤ 9 after — the
    paper's WRN max degree is 9) and the diameter is Θ(width + height),
    which is what makes every O(diameter) workload explode on it.
    """
    if width < 2 or height < 1:
        raise ValueError("road network needs width >= 2, height >= 1")
    rng = np.random.default_rng(seed)
    n = width * height
    idx = np.arange(n, dtype=np.int64).reshape(height, width)

    horiz = np.column_stack([idx[:, :-1].ravel(), idx[:, 1:].ravel()])
    vert = np.column_stack([idx[:-1, :].ravel(), idx[1:, :].ravel()])
    undirected = np.concatenate([horiz, vert])

    # Drop a few road segments (rivers, dead ends), but never the ones on
    # the first row: that row is a spine that keeps the graph connected,
    # so WCC has one dominant component like the paper's WRN.
    spine = (undirected[:, 0] < width) & (undirected[:, 1] < width)
    drop = (rng.random(len(undirected)) < missing_fraction) & ~spine
    undirected = undirected[~drop]

    # A few extra diagonal connectors model highway ramps and create the
    # occasional degree-9 intersection.
    num_extra = int(len(undirected) * extra_fraction)
    if num_extra and height > 1 and width > 1:
        r = rng.integers(0, height - 1, size=num_extra)
        c = rng.integers(0, width - 1, size=num_extra)
        diag = np.column_stack([idx[r, c], idx[r + 1, c + 1]])
        undirected = np.concatenate([undirected, diag])

    edges = np.concatenate([undirected, undirected[:, ::-1]])
    return Graph(n, edges, name=name)


def web_host_graph(
    num_hosts: int,
    pages_per_host: int,
    intra_avg_degree: float = 28.0,
    inter_avg_degree: float = 7.0,
    exponent: float = 2.1,
    seed: int = 3,
    name: str = "web",
) -> Graph:
    """A web-shaped graph: power-law pages grouped into hosts.

    Most links stay within a host (URL-prefix locality — the property
    Blogel's dataset-specific partitioners exploit and that makes Auto
    partitioning shine on UK0705 in Table 4); a smaller fraction cross
    hosts, preferentially toward hub hosts.
    """
    if num_hosts < 1 or pages_per_host < 2:
        raise ValueError("web graph needs >= 1 host and >= 2 pages per host")
    rng = np.random.default_rng(seed)
    n = num_hosts * pages_per_host
    host_of = np.arange(n, dtype=np.int64) // pages_per_host

    max_degree = max(2, int(pages_per_host * 0.9))
    intra_deg = _zipf_degrees(rng, n, intra_avg_degree, exponent, max_degree)
    src_intra = np.repeat(np.arange(n, dtype=np.int64), intra_deg)
    # Intra-host target: uniform page within the source's host, skewed to
    # low page offsets (host front pages are hubs).
    offsets = np.minimum(
        rng.pareto(1.5, size=len(src_intra)).astype(np.int64), pages_per_host - 1
    )
    dst_intra = host_of[src_intra] * pages_per_host + offsets

    inter_count = int(n * inter_avg_degree)
    src_inter = rng.integers(0, n, size=inter_count).astype(np.int64)
    host_pop = (rng.pareto(exponent - 1.0, size=num_hosts) + 1.0)
    host_pop /= host_pop.sum()
    dst_hosts = rng.choice(num_hosts, size=inter_count, p=host_pop)
    dst_inter = dst_hosts.astype(np.int64) * pages_per_host + np.minimum(
        rng.pareto(1.5, size=inter_count).astype(np.int64), pages_per_host - 1
    )

    # Host-level ring keeps the web weakly connected.
    hosts = np.arange(num_hosts, dtype=np.int64)
    backbone = np.column_stack(
        [hosts * pages_per_host, np.roll(hosts, -1) * pages_per_host]
    )

    # Self-links exist in real crawls too.
    num_self = max(1, n // 300)
    self_ids = rng.choice(n, size=num_self, replace=False).astype(np.int64)
    self_edges = np.column_stack([self_ids, self_ids])

    edges = np.concatenate(
        [
            np.column_stack([src_intra, dst_intra]),
            np.column_stack([src_inter, dst_inter]),
            backbone,
            self_edges,
        ]
    )
    return Graph(n, edges, name=name)
