"""Dataset registry: named, scaled stand-ins for the paper's datasets.

Each :class:`Dataset` couples a synthetic graph with the *paper-scale*
characteristics of the real dataset it stands in for (Table 3). The
cluster simulator accounts memory, network, and compute in paper units
by multiplying observed counts by the dataset's scale factors, so a
30.5 GB simulated machine fills up exactly when the paper's machines
did — while the algorithms execute for real on the small graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable, Dict, Tuple

from ..graph.structures import Graph
from .generators import powerlaw_social_graph, road_network_graph, web_host_graph

__all__ = [
    "PaperProfile",
    "Dataset",
    "DATASET_NAMES",
    "SIZE_NAMES",
    "PAPER_PROFILES",
    "load_dataset",
    "dataset_names",
]

GB = 1024 ** 3


@dataclass(frozen=True)
class PaperProfile:
    """Published characteristics of the real dataset (Table 3 + §5.9)."""

    name: str
    num_vertices: int
    num_edges: int
    avg_degree: float
    max_degree: int
    diameter: float
    raw_size_bytes: int          # on-disk size of the text dataset
    kind: str                    # "social" | "road" | "web"
    single_giant_component: bool = True


# Paper-scale numbers. |V| is derived from |E| / avg-degree where the
# paper does not state it outright (§5.9 gives ClueWeb's "almost one
# billion vertices" and 1.2 TB edge-list size explicitly).
PAPER_PROFILES: Dict[str, PaperProfile] = {
    "twitter": PaperProfile(
        name="twitter",
        num_vertices=41_650_000,
        num_edges=1_460_000_000,
        avg_degree=35.0,
        max_degree=2_900_000,
        diameter=5.29,
        raw_size_bytes=int(12.5 * GB),
        kind="social",
    ),
    "wrn": PaperProfile(
        name="wrn",
        num_vertices=683_000_000,
        num_edges=717_000_000,
        avg_degree=1.05,
        max_degree=9,
        diameter=48_000.0,
        raw_size_bytes=int(13.6 * GB),
        kind="road",
    ),
    "uk0705": PaperProfile(
        name="uk0705",
        num_vertices=105_900_000,
        num_edges=3_700_000_000,
        avg_degree=35.3,
        max_degree=975_000,
        diameter=22.78,
        raw_size_bytes=int(31.9 * GB),
        kind="web",
    ),
    "clueweb": PaperProfile(
        name="clueweb",
        num_vertices=978_000_000,
        num_edges=42_500_000_000,
        avg_degree=43.5,
        max_degree=75_000_000,
        diameter=15.7,
        raw_size_bytes=int(700 * GB),
        kind="web",
    ),
}

DATASET_NAMES: Tuple[str, ...] = tuple(PAPER_PROFILES)
SIZE_NAMES: Tuple[str, ...] = ("tiny", "small", "medium")

#: ad-hoc datasets (weak-scaling stand-ins, user graphs) registered at
#: runtime so engines can resolve them by (name, size) like built-ins
_CUSTOM_DATASETS: Dict[Tuple[str, str], "Dataset"] = {}


@dataclass(frozen=True)
class Dataset:
    """A generated graph plus the paper-scale profile it stands in for."""

    name: str
    size: str
    graph: Graph
    profile: PaperProfile
    sssp_source: int = 0
    #: generation metadata the dataset-specific partitioners need:
    #: "grid_shape" (height, width) for road networks, "pages_per_host"
    #: for web graphs
    metadata: tuple = ()

    def meta(self) -> dict:
        """Generation metadata as a dict."""
        return dict(self.metadata)

    @property
    def vertex_scale(self) -> float:
        """Paper vertices per generated vertex."""
        return self.profile.num_vertices / max(1, self.graph.num_vertices)

    @property
    def edge_scale(self) -> float:
        """Paper edges per generated edge."""
        return self.profile.num_edges / max(1, self.graph.num_edges)

    def scaled_vertices(self, count: float) -> float:
        """Scale a vertex count observed on the small graph to paper units."""
        return count * self.vertex_scale

    def scaled_edges(self, count: float) -> float:
        """Scale an edge/message count to paper units."""
        return count * self.edge_scale

    def __repr__(self) -> str:
        return (
            f"Dataset({self.name}/{self.size}: |V|={self.graph.num_vertices}, "
            f"|E|={self.graph.num_edges}, stands in for "
            f"|E|={self.profile.num_edges:,})"
        )


# (vertices-ish target per size; generators pick exact shapes)
_SOCIAL_SIZES = {"tiny": 300, "small": 1_500, "medium": 6_000}
_ROAD_SIZES = {"tiny": (40, 8), "small": (220, 18), "medium": (500, 24)}
_WEB_SIZES = {"tiny": (12, 25), "small": (40, 60), "medium": (90, 110)}
_CLUEWEB_SIZES = {"tiny": (16, 30), "small": (55, 90), "medium": (120, 160)}


def _build_twitter(size: str) -> Graph:
    return powerlaw_social_graph(
        _SOCIAL_SIZES[size], avg_degree=33.0, seed=11, name="twitter"
    )


def _build_wrn(size: str) -> Graph:
    width, height = _ROAD_SIZES[size]
    return road_network_graph(width, height, seed=22, name="wrn")


def _build_uk(size: str) -> Graph:
    hosts, pages = _WEB_SIZES[size]
    return web_host_graph(
        hosts, pages, intra_avg_degree=27.0, inter_avg_degree=7.0, seed=33, name="uk0705"
    )


def _build_clueweb(size: str) -> Graph:
    hosts, pages = _CLUEWEB_SIZES[size]
    return web_host_graph(
        hosts, pages, intra_avg_degree=33.0, inter_avg_degree=9.0, seed=44,
        name="clueweb",
    )


_BUILDERS: Dict[str, Callable[[str], Graph]] = {
    "twitter": _build_twitter,
    "wrn": _build_wrn,
    "uk0705": _build_uk,
    "clueweb": _build_clueweb,
}

# The paper uses one random-but-fixed SSSP/K-hop source per dataset
# (§3.3). Ours are fixed, non-trivial vertices inside the giant component.
_SSSP_SOURCES = {"twitter": 5, "wrn": 3, "uk0705": 7, "clueweb": 9}


def register_dataset(dataset: "Dataset") -> "Dataset":
    """Register an ad-hoc dataset so engines can resolve it by name.

    Built-in names cannot be shadowed. Returns the dataset for chaining.
    """
    key = (dataset.name, dataset.size)
    if dataset.name in _BUILDERS:
        raise ValueError(f"cannot shadow built-in dataset {dataset.name!r}")
    _CUSTOM_DATASETS[key] = dataset
    return dataset


@lru_cache(maxsize=None)
def load_dataset(name: str, size: str = "small") -> Dataset:
    """Build (and memoize) a named dataset at a named size.

    ``name`` is one of :data:`DATASET_NAMES` (``size`` one of
    :data:`SIZE_NAMES`), or the name of a dataset previously passed to
    :func:`register_dataset`. Generation is deterministic, so repeated
    calls in one process share the same object.
    """
    if (name, size) in _CUSTOM_DATASETS:
        return _CUSTOM_DATASETS[(name, size)]
    if name not in _BUILDERS:
        raise KeyError(f"unknown dataset {name!r}; expected one of {DATASET_NAMES}")
    if size not in SIZE_NAMES:
        raise KeyError(f"unknown size {size!r}; expected one of {SIZE_NAMES}")
    graph = _BUILDERS[name](size)
    if name == "wrn":
        width, height = _ROAD_SIZES[size]
        metadata = (("grid_shape", (height, width)),)
    elif name == "uk0705":
        metadata = (("pages_per_host", _WEB_SIZES[size][1]),)
    elif name == "clueweb":
        metadata = (("pages_per_host", _CLUEWEB_SIZES[size][1]),)
    else:
        metadata = ()
    return Dataset(
        name=name,
        size=size,
        graph=graph,
        profile=PAPER_PROFILES[name],
        sssp_source=_SSSP_SOURCES[name],
        metadata=metadata,
    )


def dataset_names(include_clueweb: bool = True) -> Tuple[str, ...]:
    """Dataset names in the paper's reporting order.

    Most result grids (Figs 6–9) exclude ClueWeb, which only fits the
    128-machine cluster and is reported separately (Table 7).
    """
    if include_clueweb:
        return DATASET_NAMES
    return tuple(n for n in DATASET_NAMES if n != "clueweb")
