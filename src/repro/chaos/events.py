"""Typed fault events a :class:`~repro.chaos.plan.ChaosPlan` can schedule.

Every event is a frozen dataclass with a simulated ``time`` (seconds on
the run's clock) at which it fires and a ``kind`` tag used in spans,
journals, and cache keys. Events carry only *what* happens; *where* it
happens (which machine) is resolved deterministically at run time by
:class:`~repro.chaos.runtime.ChaosRuntime` from the plan seed, unless
the event pins a machine explicitly.

The taxonomy (one class per row of the README's fault table):

========================  ====================================================
``crash``                 a worker dies; Table 1's recovery mechanism applies
``straggler``             one machine's compute slows ``slowdown``x for
                          ``supersteps`` supersteps
``netdegrade``            every NIC's bandwidth is divided by ``factor`` for
                          ``supersteps`` supersteps
``netsplit``              a machine group is unreachable for ``seconds``;
                          BSP barriers stall, Vertica aborts and restarts
``msgloss``               ``fraction`` of the last superstep's messages are
                          lost and redelivered (at-least-once accounting)
``blockloss``             ``fraction`` of the dataset's HDFS blocks lose a
                          replica: surviving replicas are re-read and
                          re-replicated
``ckptcorrupt``           the most recent checkpoint is unreadable; the next
                          crash falls back to an older one (or to zero)
``scaleout``              ``n_machines`` workers join the cluster *before*
                          superstep ``at_superstep``; the engine repartitions
                          per its Table 1 mechanism
``scalein``               ``machines`` workers leave the cluster before
                          superstep ``at_superstep``; survivors absorb the
                          departed partitions (OOM is a legitimate outcome)
========================  ====================================================

Most events fire on the simulated clock (``time``); the elasticity
events fire on the *superstep counter* instead (``at_superstep``), so a
rescale always lands exactly between two supersteps regardless of how
long each engine's supersteps take. The ``trigger`` class attribute
tells :class:`~repro.chaos.runtime.ChaosRuntime` which cursor an event
belongs to.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, ClassVar, Dict, Mapping, Optional, Tuple, Type

__all__ = [
    "ChaosEvent",
    "MachineCrash",
    "Straggler",
    "NetworkDegradation",
    "NetworkPartition",
    "MessageLoss",
    "BlockLoss",
    "CheckpointCorruption",
    "ScaleOut",
    "ScaleIn",
    "EVENT_KINDS",
    "event_from_dict",
]


@dataclass(frozen=True)
class ChaosEvent:
    """Base class: one scheduled fault on the simulated clock."""

    kind: ClassVar[str] = ""
    #: which cursor fires the event: "time" (the simulated clock) or
    #: "superstep" (the loop's iteration counter — elasticity events)
    trigger: ClassVar[str] = "time"

    #: simulated seconds at which the event fires
    time: float = 0.0

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"{type(self).__name__}.time must be non-negative")

    def to_dict(self) -> Dict[str, Any]:
        """Canonical dict form (stable keys; used in cache keys/journals)."""
        payload: Dict[str, Any] = {"kind": self.kind}
        for f in fields(self):
            payload[f.name] = getattr(self, f.name)
        return payload


@dataclass(frozen=True)
class MachineCrash(ChaosEvent):
    """A worker machine dies and is replaced after recovery."""

    kind: ClassVar[str] = "crash"

    #: pin the victim; None lets the runtime derive one from the seed
    machine: Optional[int] = None


@dataclass(frozen=True)
class Straggler(ChaosEvent):
    """One machine computes ``slowdown``x slower for ``supersteps`` rounds."""

    kind: ClassVar[str] = "straggler"

    slowdown: float = 4.0
    supersteps: int = 3
    machine: Optional[int] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.slowdown <= 1.0:
            raise ValueError("Straggler.slowdown must be > 1")
        if self.supersteps < 1:
            raise ValueError("Straggler.supersteps must be >= 1")


@dataclass(frozen=True)
class NetworkDegradation(ChaosEvent):
    """Every NIC's bandwidth is cut by ``factor`` for ``supersteps`` rounds."""

    kind: ClassVar[str] = "netdegrade"

    factor: float = 4.0
    supersteps: int = 3

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.factor <= 1.0:
            raise ValueError("NetworkDegradation.factor must be > 1")
        if self.supersteps < 1:
            raise ValueError("NetworkDegradation.supersteps must be >= 1")


@dataclass(frozen=True)
class NetworkPartition(ChaosEvent):
    """A machine group is unreachable for ``seconds`` of simulated time.

    BSP systems stall at the next barrier until the partition heals;
    a system with no fault tolerance aborts and restarts from zero.
    """

    kind: ClassVar[str] = "netsplit"

    seconds: float = 30.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.seconds <= 0:
            raise ValueError("NetworkPartition.seconds must be > 0")


@dataclass(frozen=True)
class MessageLoss(ChaosEvent):
    """``fraction`` of the last superstep's messages are redelivered."""

    kind: ClassVar[str] = "msgloss"

    fraction: float = 0.1

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError("MessageLoss.fraction must be in (0, 1]")


@dataclass(frozen=True)
class BlockLoss(ChaosEvent):
    """``fraction`` of the input's HDFS blocks lose one replica."""

    kind: ClassVar[str] = "blockloss"

    fraction: float = 0.1

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError("BlockLoss.fraction must be in (0, 1]")


@dataclass(frozen=True)
class CheckpointCorruption(ChaosEvent):
    """The latest checkpoint is unreadable; recovery falls back further."""

    kind: ClassVar[str] = "ckptcorrupt"


@dataclass(frozen=True)
class ScaleOut(ChaosEvent):
    """``n_machines`` workers join before superstep ``at_superstep``.

    The engine pays its Table 1 mechanism's repartitioning bill (see
    :meth:`~repro.engines.base.RecoveryModel.rescale`), then continues
    on the larger cluster. Answers are unaffected by construction — the
    workload computes on the real graph regardless of cluster size.
    """

    kind: ClassVar[str] = "scaleout"
    trigger: ClassVar[str] = "superstep"

    n_machines: int = 1
    at_superstep: int = 1

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.n_machines < 1:
            raise ValueError("ScaleOut.n_machines must be >= 1")
        if self.at_superstep < 1:
            raise ValueError("ScaleOut.at_superstep must be >= 1")


@dataclass(frozen=True)
class ScaleIn(ChaosEvent):
    """``machines`` workers leave before superstep ``at_superstep``.

    Survivors absorb the departed partitions; a cluster shrunk below
    its memory needs OOMs, which is a legitimate experiment outcome.
    The worker count never drops below one.
    """

    kind: ClassVar[str] = "scalein"
    trigger: ClassVar[str] = "superstep"

    machines: int = 1
    at_superstep: int = 1

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.machines < 1:
            raise ValueError("ScaleIn.machines must be >= 1")
        if self.at_superstep < 1:
            raise ValueError("ScaleIn.at_superstep must be >= 1")


EVENT_KINDS: Mapping[str, Type[ChaosEvent]] = {
    cls.kind: cls
    for cls in (
        MachineCrash,
        Straggler,
        NetworkDegradation,
        NetworkPartition,
        MessageLoss,
        BlockLoss,
        CheckpointCorruption,
        ScaleOut,
        ScaleIn,
    )
}


def event_from_dict(payload: Mapping[str, Any]) -> ChaosEvent:
    """Rebuild an event from its :meth:`ChaosEvent.to_dict` form."""
    data = dict(payload)
    kind = data.pop("kind", None)
    cls = EVENT_KINDS.get(kind)  # type: ignore[arg-type]
    if cls is None:
        raise ValueError(f"unknown chaos event kind {kind!r}")
    return cls(**data)


def sorted_events(events: Tuple[ChaosEvent, ...]) -> Tuple[ChaosEvent, ...]:
    """Events in firing order; ties break by plan position (stable)."""
    return tuple(sorted(events, key=lambda e: e.time))
