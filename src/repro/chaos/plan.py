"""The chaos schedule: which faults fire when, under which seed.

A :class:`ChaosPlan` is pure immutable data — events, a checkpoint
interval for the checkpointing systems, and a seed that resolves any
machine choices the events leave open. Per-run mutable state (which
events have fired, which stragglers are active) lives in
:class:`~repro.chaos.runtime.ChaosRuntime`, built fresh by every
:class:`~repro.cluster.cluster.Cluster`; reusing one plan (or one
``ClusterSpec``) across many runs therefore injects the same faults in
every run.

``repro.cluster.faults.FaultPlan`` is the backward-compatible subclass
that still accepts plain ``fail_times`` floats.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Tuple

from .events import ChaosEvent, event_from_dict

__all__ = ["ChaosPlan"]


@dataclass(unsafe_hash=True)
class ChaosPlan:
    """Scheduled fault events for one run (immutable; seeded)."""

    #: typed fault events (any order; fired in time order)
    events: Tuple[ChaosEvent, ...] = ()
    #: supersteps between global checkpoints (checkpointing systems)
    checkpoint_interval: int = 10
    #: resolves machine choices the events leave open
    seed: int = 0

    def __post_init__(self) -> None:
        self.events = tuple(self.events)
        if self.checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be >= 1")

    def to_dict(self) -> Dict[str, Any]:
        """Canonical dict form — the chaos component of exec cache keys."""
        return {
            "events": [event.to_dict() for event in self.events],
            "checkpoint_interval": self.checkpoint_interval,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ChaosPlan":
        """Rebuild a plan from :meth:`to_dict` (workers, cached cells)."""
        return cls(
            events=tuple(
                event_from_dict(event) for event in payload.get("events", ())
            ),
            checkpoint_interval=int(payload.get("checkpoint_interval", 10)),
            seed=int(payload.get("seed", 0)),
        )

    def label(self) -> str:
        """Short human tag, e.g. ``crash x2@s7`` (used in trace names)."""
        if not self.events:
            return f"quiet@s{self.seed}"
        kinds: Dict[str, int] = {}
        for event in self.events:
            kinds[event.kind] = kinds.get(event.kind, 0) + 1
        parts = "+".join(
            f"{kind}x{count}" for kind, count in sorted(kinds.items())
        )
        return f"{parts}@s{self.seed}"
