"""repro.chaos: seeded, deterministic fault injection for the simulation.

The package turns Table 1's qualitative fault-tolerance column into
measured recovery cost. A :class:`ChaosPlan` schedules typed events
(crash, straggler, network degradation/partition, message loss, HDFS
block loss, checkpoint corruption); every engine consumes them between
supersteps through its :class:`~repro.engines.base.RecoveryModel`,
charging simulated recovery time and emitting ``fault``/``recover``
spans plus ``recovery_seconds`` / ``supersteps_replayed`` /
``bytes_rereplicated`` metrics. Faulted runs still produce bit-exact
answers — chaos only ever costs time, never correctness.

Layering: ``events``/``plan``/``runtime`` are leaf modules (imported by
``repro.cluster``); ``recovery`` and ``experiment`` sit above
``repro.engines`` / ``repro.exec`` and load lazily to keep the import
graph acyclic.
"""

from .events import (
    EVENT_KINDS,
    BlockLoss,
    ChaosEvent,
    CheckpointCorruption,
    MachineCrash,
    MessageLoss,
    NetworkDegradation,
    NetworkPartition,
    Straggler,
    event_from_dict,
)
from .plan import ChaosPlan
from .runtime import ChaosRuntime, derive_machine

__all__ = [
    "ChaosEvent",
    "MachineCrash",
    "Straggler",
    "NetworkDegradation",
    "NetworkPartition",
    "MessageLoss",
    "BlockLoss",
    "CheckpointCorruption",
    "EVENT_KINDS",
    "event_from_dict",
    "ChaosPlan",
    "ChaosRuntime",
    "derive_machine",
    "RecoveryContext",
    "recovery_model_for",
    "RecoveryCell",
    "ChaosReport",
    "recovery_cost_experiment",
]

_LAZY = {
    "RecoveryContext": "recovery",
    "recovery_model_for": "recovery",
    "RecoveryCell": "experiment",
    "ChaosReport": "experiment",
    "recovery_cost_experiment": "experiment",
}


def __getattr__(name):
    # recovery/experiment import repro.engines / repro.exec, which import
    # repro.cluster, which imports chaos.runtime — eager re-export here
    # would close that cycle during package init.
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.chaos' has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    return getattr(module, name)
