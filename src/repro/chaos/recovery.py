"""Concrete recovery models: Table 1's fault-tolerance column, costed.

Three mechanisms cover every system under study:

* :class:`CheckpointRecovery` — the in-memory BSP systems (Giraph,
  Blogel, GraphLab, GraphX, Gelly, ...) write a replicated global
  checkpoint of the vertex state every ``checkpoint_interval``
  supersteps; a crash reloads partitions from HDFS and re-executes
  everything since the last usable checkpoint.
* :class:`ReexecutionRecovery` — Hadoop/HaLoop re-run only the dead
  machine's tasks of the current iteration; the blast radius is one
  machine's shard, not the cluster.
* :class:`RestartRecovery` — Vertica has no fault tolerance: any crash
  or partition aborts the query and the run restarts from zero.

Each method charges simulated time through the run's cluster; the
superstep loop wraps the calls in ``recover`` spans and accumulates
``recovery_seconds`` (see ``BspExecutionMixin._chaos_round``). The
protocol itself — :class:`~repro.engines.base.RecoveryModel` — lives in
``engines/base.py`` next to :class:`~repro.engines.base.Engine`.
"""

from __future__ import annotations

from ..engines.base import RecoveryContext, RecoveryModel

__all__ = [
    "CheckpointRecovery",
    "ReexecutionRecovery",
    "RestartRecovery",
    "recovery_model_for",
]


class CheckpointRecovery(RecoveryModel):
    """Global checkpoints + replay-since-checkpoint (the BSP systems)."""

    name = "checkpoint"

    def __init__(self, checkpoint_interval: int) -> None:
        if checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be >= 1")
        self.checkpoint_interval = checkpoint_interval

    def maybe_checkpoint(self, ctx: RecoveryContext) -> None:
        if ctx.iteration % self.checkpoint_interval:
            return
        cluster = ctx.cluster
        with cluster.tracer.span("checkpoint", cat="chaos",
                                 iteration=ctx.iteration):
            cluster.hdfs_write(ctx.state_bytes)
        ctx.checkpoints.append((cluster.now, ctx.iteration))
        ctx.result.extras["checkpoints"] = (
            ctx.result.extras.get("checkpoints", 0) + 1
        )

    def recover_crash(self, ctx, event, machine) -> None:
        cluster = ctx.cluster
        # every machine reloads its partitions plus the checkpointed state
        cluster.hdfs_read(ctx.dataset.profile.raw_size_bytes + ctx.state_bytes)
        ckpt_time, ckpt_iteration = ctx.last_checkpoint
        cluster.advance(max(0.0, cluster.now - ckpt_time))
        ctx.count_replayed(max(0, ctx.iteration - ckpt_iteration))

    def corrupt_checkpoint(self, ctx, event) -> None:
        if ctx.checkpoints:
            ctx.checkpoints.pop()
            ctx.cluster.metrics.counter("checkpoints_corrupted").inc()

    def rescale(self, ctx, event, old_workers, new_workers) -> None:
        # a checkpointing system has no partition-migration protocol:
        # the new cluster reloads everything from HDFS (input partitions
        # plus the checkpointed state) and replays since the checkpoint
        cluster = ctx.cluster
        cluster.hdfs_read(ctx.dataset.profile.raw_size_bytes + ctx.state_bytes)
        ckpt_time, ckpt_iteration = ctx.last_checkpoint
        cluster.advance(max(0.0, cluster.now - ckpt_time))
        ctx.count_replayed(max(0, ctx.iteration - ckpt_iteration))


class ReexecutionRecovery(RecoveryModel):
    """Per-task re-execution (Hadoop/HaLoop): redo one iteration's shard."""

    name = "reexecution"

    def recover_crash(self, ctx, event, machine) -> None:
        ctx.cluster.advance(max(0.0, ctx.cluster.now - ctx.superstep_start))
        ctx.count_replayed(1)

    def rescale(self, ctx, event, old_workers, new_workers) -> None:
        # task-granular systems migrate only the moved shards: going
        # from o to n workers relocates |n - o| / max(o, n) of the data
        # (each machine owns 1/max share), shipped over the wire, then
        # the interrupted iteration's tasks re-run on the new layout
        cluster = ctx.cluster
        moved = abs(new_workers - old_workers) / max(old_workers, new_workers)
        nbytes = (ctx.dataset.profile.raw_size_bytes + ctx.state_bytes) * moved
        if nbytes > 0.0:
            cluster.shuffle(nbytes)
        ctx.count_replayed(1)


class RestartRecovery(RecoveryModel):
    """No fault tolerance (Vertica): abort and restart from zero."""

    name = "none"

    def recover_crash(self, ctx, event, machine) -> None:
        ctx.cluster.advance(max(0.0, ctx.cluster.now - ctx.loop_start))
        ctx.count_replayed(ctx.iteration)

    def recover_partition(self, ctx, event, machine) -> None:
        # the query dies when the split hits, waits out the partition,
        # then redoes everything since the start of the loop
        ctx.cluster.advance(
            event.seconds + max(0.0, ctx.cluster.now - ctx.loop_start)
        )
        ctx.count_replayed(ctx.iteration)

    def rescale(self, ctx, event, old_workers, new_workers) -> None:
        # no online membership change: the query aborts and the whole
        # run restarts from zero on the resized cluster
        ctx.cluster.advance(max(0.0, ctx.cluster.now - ctx.loop_start))
        ctx.count_replayed(ctx.iteration)


def recovery_model_for(mechanism: str, checkpoint_interval: int) -> RecoveryModel:
    """Build the model for an engine's ``fault_tolerance`` class attr."""
    if mechanism == "checkpoint":
        return CheckpointRecovery(checkpoint_interval)
    if mechanism == "reexecution":
        return ReexecutionRecovery()
    if mechanism == "none":
        return RestartRecovery()
    raise ValueError(
        f"unknown fault-tolerance mechanism {mechanism!r}; expected "
        "'checkpoint', 'reexecution', or 'none'"
    )
