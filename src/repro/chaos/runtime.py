"""Per-run chaos state: the cursor over a plan's events.

A :class:`ChaosRuntime` is built by every
:class:`~repro.cluster.cluster.Cluster` from the spec's (immutable)
:class:`~repro.chaos.plan.ChaosPlan`. It owns everything mutable about
fault injection — which events have fired, which stragglers and
bandwidth cuts are active, how many supersteps they have left — so a
plan or ``ClusterSpec`` reused across grid cells re-arms every fault on
each run (the old ``FaultPlan.pop_due`` drained the plan itself; see
tests/test_faults.py::test_spec_reused_across_runs_rearms_faults).

Machine choices an event leaves open resolve deterministically from
``sha256(seed, event_index)`` — no RNG state, no ordering sensitivity:
the same plan always hurts the same machines.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Sequence, Tuple

from .events import ChaosEvent
from .plan import ChaosPlan

__all__ = ["ChaosRuntime", "derive_machine"]


def derive_machine(seed: int, index: int, num_workers: int) -> int:
    """Deterministic victim choice for event ``index`` under ``seed``."""
    digest = hashlib.sha256(f"chaos:{seed}:{index}".encode("ascii")).digest()
    return int.from_bytes(digest[:4], "big") % max(1, num_workers)


class _ActiveEffect:
    """A compute/network effect with a superstep countdown."""

    __slots__ = ("factor", "remaining")

    def __init__(self, factor: float, supersteps: int) -> None:
        self.factor = factor
        self.remaining = supersteps


class ChaosRuntime:
    """Mutable per-run view over a :class:`ChaosPlan`."""

    def __init__(self, plan: ChaosPlan, num_workers: int) -> None:
        self.plan = plan
        self.num_workers = max(1, num_workers)
        # two cursors: clock-triggered events fire by simulated time,
        # superstep-triggered ones (the elasticity events) by iteration
        timed = [
            (i, e) for i, e in enumerate(plan.events) if e.trigger == "time"
        ]
        # firing order: by time, ties by plan position (sorted is stable)
        indexed = sorted(timed, key=lambda pair: pair[1].time)
        self._pending: List[Tuple[int, ChaosEvent]] = list(indexed)
        self._pending_supersteps: List[Tuple[int, ChaosEvent]] = sorted(
            (
                (i, e)
                for i, e in enumerate(plan.events)
                if e.trigger == "superstep"
            ),
            key=lambda pair: pair[1].at_superstep,
        )
        self._machines: Dict[int, int] = {}
        for index, event in indexed + self._pending_supersteps:
            pinned = getattr(event, "machine", None)
            self._machines[index] = (
                int(pinned) if pinned is not None
                else derive_machine(plan.seed, index, self.num_workers)
            )
        self._stragglers: Dict[int, _ActiveEffect] = {}
        self._degradations: List[_ActiveEffect] = []

    # -- event cursor -------------------------------------------------------

    def pop_due(self, now: float) -> List[Tuple[int, ChaosEvent]]:
        """``(index, event)`` pairs that have fired by ``now`` (once each)."""
        due = [(i, e) for i, e in self._pending if e.time <= now]
        self._pending = [(i, e) for i, e in self._pending if e.time > now]
        return due

    def pop_due_superstep(self, iteration: int) -> List[Tuple[int, ChaosEvent]]:
        """Superstep-triggered ``(index, event)`` pairs due by ``iteration``.

        An event with ``at_superstep == n`` fires in the chaos round
        *after* superstep ``n`` completes — i.e. the rescale happens on
        the boundary before superstep ``n + 1`` runs.
        """
        due = [
            (i, e)
            for i, e in self._pending_supersteps
            if e.at_superstep <= iteration
        ]
        self._pending_supersteps = [
            (i, e)
            for i, e in self._pending_supersteps
            if e.at_superstep > iteration
        ]
        return due

    @property
    def pending(self) -> Tuple[ChaosEvent, ...]:
        """Events not yet fired, in firing order (clock, then superstep)."""
        return tuple(
            event
            for _, event in self._pending + self._pending_supersteps
        )

    def machine_for(self, index: int) -> int:
        """The (seed-derived or pinned) machine event ``index`` hits."""
        return self._machines[index]

    # -- active effects -----------------------------------------------------

    def add_straggler(self, machine: int, slowdown: float, supersteps: int) -> None:
        """Slow ``machine``'s compute by ``slowdown``x for ``supersteps``."""
        current = self._stragglers.get(machine)
        if current is None or slowdown > current.factor:
            self._stragglers[machine] = _ActiveEffect(slowdown, supersteps)
        else:
            current.remaining = max(current.remaining, supersteps)

    def add_degradation(self, factor: float, supersteps: int) -> None:
        """Cut every NIC's bandwidth by ``factor`` for ``supersteps``."""
        self._degradations.append(_ActiveEffect(factor, supersteps))

    def compute_factor(self, machine: int) -> float:
        """Multiplier on ``machine``'s compute time this superstep."""
        effect = self._stragglers.get(machine)
        return effect.factor if effect is not None else 1.0

    def apply_compute(self, loads: Sequence[float]) -> List[float]:
        """Per-machine compute seconds with active stragglers applied."""
        if not self._stragglers:
            return list(loads)
        return [
            seconds * self.compute_factor(machine)
            for machine, seconds in enumerate(loads)
        ]

    def bandwidth_factor(self) -> float:
        """Divisor on every NIC's bandwidth (1.0 = healthy network)."""
        factor = 1.0
        for effect in self._degradations:
            factor *= effect.factor
        return factor

    def end_superstep(self) -> None:
        """Tick active effects down one superstep; expire finished ones."""
        expired = [
            machine
            for machine, effect in self._stragglers.items()
            if self._tick(effect)
        ]
        for machine in expired:
            del self._stragglers[machine]
        self._degradations = [
            effect for effect in self._degradations if not self._tick(effect)
        ]

    @staticmethod
    def _tick(effect: _ActiveEffect) -> bool:
        effect.remaining -= 1
        return effect.remaining <= 0

    @property
    def exhausted(self) -> bool:
        """True when every scheduled event has fired."""
        return not self._pending and not self._pending_supersteps
