"""The recovery-cost experiment: MTTR vs fault intensity per system.

The paper's Table 1 lists each system's fault-tolerance mechanism but
never measures it. This experiment does: for each (system, fault kind,
intensity) cell it runs a fault-free reference plus a faulted run whose
events are spread evenly across the reference's execute window, then
reports the mean time to recover (charged ``recovery_seconds`` per
fault), the end-to-end overhead, and — the correctness gate — whether
the faulted run's answers are bit-equal to the reference's.

Everything executes through :func:`repro.exec.execute_specs`, so cells
are cacheable (the chaos plan, seed included, is part of the cache key)
and fan out over ``--jobs`` workers; faulted cells of the same
coordinates stay distinct because the experiment consumes the plan-
ordered ``GridExecution.results``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.runner import ExperimentSpec
from ..engines import make_engine
from ..engines.base import RunResult
from .events import (
    BlockLoss,
    ChaosEvent,
    CheckpointCorruption,
    MachineCrash,
    MessageLoss,
    NetworkDegradation,
    NetworkPartition,
    Straggler,
)
from .plan import ChaosPlan

__all__ = [
    "FAULT_KINDS",
    "DEFAULT_FAULTS",
    "DEFAULT_SYSTEMS",
    "RecoveryCell",
    "ChaosReport",
    "plan_for",
    "recovery_cost_experiment",
]

#: every injectable fault kind, in taxonomy order
FAULT_KINDS = (
    "crash", "straggler", "netdegrade", "netsplit", "msgloss",
    "blockloss", "ckptcorrupt",
)

#: the default grid: one fault of each blast radius
DEFAULT_FAULTS = ("crash", "straggler", "netsplit", "blockloss")

#: spans all three Table 1 mechanisms: checkpoint (BV, G),
#: re-execution (HD), none (V)
DEFAULT_SYSTEMS = ("BV", "G", "HD", "V")


def _event_at(kind: str, time: float) -> ChaosEvent:
    """One event of ``kind`` at ``time`` (taxonomy defaults)."""
    if kind == "crash":
        return MachineCrash(time=time)
    if kind == "straggler":
        return Straggler(time=time)
    if kind == "netdegrade":
        return NetworkDegradation(time=time)
    if kind == "netsplit":
        return NetworkPartition(time=time)
    if kind == "msgloss":
        return MessageLoss(time=time)
    if kind == "blockloss":
        return BlockLoss(time=time)
    if kind == "ckptcorrupt":
        return CheckpointCorruption(time=time)
    raise KeyError(f"unknown fault kind {kind!r}; expected one of {FAULT_KINDS}")


def plan_for(
    kind: str,
    intensity: int,
    window: Tuple[float, float],
    seed: int = 0,
    checkpoint_interval: int = 10,
) -> ChaosPlan:
    """``intensity`` events of ``kind`` spread evenly across ``window``.

    Event i of n fires at ``start + (end - start) * (i+1)/(n+1)`` — all
    strictly inside the window, so every scheduled fault actually hits
    a running superstep loop. Corruption events each precede an extra
    crash (corruption alone costs nothing until something fails).
    """
    if intensity < 1:
        raise ValueError("intensity must be >= 1")
    start, end = window
    if end <= start:
        raise ValueError("window must have positive length")
    events: List[ChaosEvent] = []
    for i in range(intensity):
        time = start + (end - start) * (i + 1) / (intensity + 1)
        events.append(_event_at(kind, time))
        if kind == "ckptcorrupt":
            # the corrupted checkpoint only costs when a crash follows
            events.append(MachineCrash(time=time + (end - start) * 0.5 / (intensity + 1)))
    return ChaosPlan(
        events=tuple(events), checkpoint_interval=checkpoint_interval, seed=seed
    )


@dataclass
class RecoveryCell:
    """One (system, fault kind, intensity) cell of the MTTR grid."""

    system: str
    fault: str
    intensity: int
    clean: RunResult
    faulted: RunResult
    #: Table 1 mechanism the system recovered with
    mechanism: str

    @property
    def recovery_seconds(self) -> float:
        """Total simulated seconds charged inside ``recover`` spans."""
        return float(self.faulted.extras.get("recovery_seconds", 0.0))

    @property
    def mttr(self) -> float:
        """Mean time to recover: recovery seconds per injected fault."""
        return self.recovery_seconds / self.intensity

    @property
    def overhead_seconds(self) -> float:
        """End-to-end slowdown vs the fault-free reference."""
        return self.faulted.total_time - self.clean.total_time

    @property
    def answers_exact(self) -> bool:
        """The correctness gate: faulted answers bit-equal the reference.

        Vacuously False when either run failed (TO under heavy chaos is
        a legitimate outcome — the cell reports the failure code).
        """
        if self.clean.answer is None or self.faulted.answer is None:
            return False
        return bool(np.array_equal(self.clean.answer, self.faulted.answer))

    @property
    def completed(self) -> bool:
        """Both runs finished (no TO/OOM under chaos)."""
        return self.clean.ok and self.faulted.ok

    def cell_text(self) -> str:
        """Grid cell: ``MTTR (+overhead)`` seconds, or the failure code."""
        if not self.faulted.ok:
            return str(self.faulted.failure)
        return f"{self.mttr:.0f} (+{self.overhead_seconds:.0f})"


@dataclass
class ChaosReport:
    """The full recovery-cost grid plus its correctness verdict."""

    workload: str
    dataset: str
    cluster_size: int
    seed: int
    cells: List[RecoveryCell] = field(default_factory=list)
    clean: Dict[str, RunResult] = field(default_factory=dict)

    @property
    def all_exact(self) -> bool:
        """True when every completed faulted run matched its reference."""
        return all(c.answers_exact for c in self.cells if c.completed)

    def mismatches(self) -> List[RecoveryCell]:
        """Completed cells whose answers diverged (must be empty)."""
        return [c for c in self.cells if c.completed and not c.answers_exact]


def recovery_cost_experiment(
    systems: Sequence[str] = DEFAULT_SYSTEMS,
    workload: str = "pagerank",
    dataset: str = "twitter",
    cluster_size: int = 16,
    dataset_size: str = "small",
    faults: Sequence[str] = DEFAULT_FAULTS,
    intensities: Sequence[int] = (1, 2, 3),
    seed: int = 0,
    checkpoint_interval: int = 10,
    jobs: Optional[int] = None,
    cache_dir: Union[None, str, Path] = None,
    resume: bool = False,
    progress=None,
) -> ChaosReport:
    """Measure every system's recovery cost across the fault grid.

    Runs the fault-free references first (they define each system's
    execute window, which the fault times are derived from), then the
    whole faulted matrix in one pooled :func:`~repro.exec.execute_specs`
    call. Deterministic end to end: same seed ⇒ same plans ⇒ same
    results, byte-identical journals included.
    """
    from ..exec import execute_specs

    for kind in faults:
        if kind not in FAULT_KINDS:
            raise KeyError(
                f"unknown fault kind {kind!r}; expected one of {FAULT_KINDS}"
            )

    base = dict(
        workloads=(workload,),
        datasets=(dataset,),
        cluster_sizes=(cluster_size,),
        dataset_size=dataset_size,
    )
    exec_kwargs = dict(
        jobs=jobs, cache=cache_dir, resume=resume, progress=progress
    )

    clean_exec = execute_specs(
        [ExperimentSpec(systems=tuple(systems), **base)], **exec_kwargs
    )
    clean = {r.system: r for r in clean_exec.results}

    specs: List[ExperimentSpec] = []
    coords: List[Tuple[str, str, int]] = []
    for system in systems:
        reference = clean[system]
        if not reference.ok:
            continue
        window = (
            reference.load_time,
            reference.load_time + reference.execute_time,
        )
        for kind in faults:
            for intensity in intensities:
                specs.append(ExperimentSpec(
                    systems=(system,),
                    chaos=plan_for(
                        kind, intensity, window,
                        seed=seed, checkpoint_interval=checkpoint_interval,
                    ),
                    **base,
                ))
                coords.append((system, kind, intensity))

    faulted_exec = execute_specs(specs, **exec_kwargs) if specs else None

    report = ChaosReport(
        workload=workload, dataset=dataset, cluster_size=cluster_size,
        seed=seed, clean=clean,
    )
    if faulted_exec is not None:
        for (system, kind, intensity), faulted in zip(
            coords, faulted_exec.results
        ):
            report.cells.append(RecoveryCell(
                system=system,
                fault=kind,
                intensity=intensity,
                clean=clean[system],
                faulted=faulted,
                mechanism=make_engine(system).fault_tolerance,
            ))
    return report
