"""Command-line interface: drive the experiments without writing code.

Subcommands mirror the study's workflow::

    repro datasets                      # Table 3 for the synthetic stand-ins
    repro run BV pagerank twitter -m 16 # one experiment cell
    repro grid wcc --log runs.jsonl     # one result figure (Figs 6-9)
    repro grid wcc --jobs 4 --resume    # same grid, parallel + resumable
    repro bench-grid                    # time jobs=1 vs jobs=N -> BENCH_grid.json
    repro cost                          # Table 9 (the COST experiment)
    repro weak BV pagerank twitter      # the weak-scaling extension
    repro chaos --faults crash netsplit # fault injection: MTTR per system
    repro elastic --directions out in   # mid-run rescaling: cost per mechanism
    repro report runs.jsonl -o out.md   # Markdown report from a log
    repro report traces/ BENCH_grid.json # cost & perf report from journals
    repro report --diff old/ new/       # regression gate: exit 1 if slower
    repro trace trace.jsonl --summary   # inspect a run journal
    repro lint src/                     # enforce the model contracts (RPLxxx)
    repro serve                         # benchmark-as-a-service daemon
    repro submit pagerank --systems BB G # run a grid through the daemon
    repro serve-ctl stats               # query / shut down the daemon
    repro serve-bench --clients 120     # Zipf load test -> BENCH_serve.json

Grid and run executions go through :mod:`repro.exec`: independent cells
fan out over ``--jobs`` worker processes, finished cells land in a
content-addressed cache (``--cache-dir``, default ``.repro-cache``;
``--no-cache`` disables), and an interrupted grid picks up where it
died with ``--resume``.

Installed as the ``repro`` console script; also runnable via
``python -m repro.cli``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis import render_grid, render_table, write_log
from .analysis.report import grid_report
from .chaos.experiment import DEFAULT_FAULTS, DEFAULT_SYSTEMS, FAULT_KINDS
from .elastic import DEFAULT_MAGNITUDES, DEFAULT_TIMINGS, DIRECTIONS
from .elastic import DEFAULT_SYSTEMS as ELASTIC_SYSTEMS
from .cluster import CLUSTER_SIZES
from .core import cost_experiment
from .core.weak_scaling import weak_efficiency, weak_scaling_experiment
from .datasets import DATASET_NAMES, load_dataset
from .engines import (ENGINE_KEYS, EXTENSION_WORKLOADS, WORKLOAD_NAMES,
                      systems_for_workload)
from .graph import compute_stats, estimate_diameter

__all__ = ["main", "build_parser"]


def _add_exec_options(p: argparse.ArgumentParser) -> None:
    """The executor flags ``repro run`` and ``repro grid`` share."""
    p.add_argument("--jobs", type=int, default=None, metavar="N",
                   help="worker processes (default: cpu count; 1 = inline)")
    p.add_argument("--cache-dir", default=".repro-cache", metavar="DIR",
                   help="result cache location (default: .repro-cache)")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the result cache (always re-execute)")
    p.add_argument("--resume", action="store_true",
                   help="resume an interrupted run from its cache")


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Experimental Analysis of Distributed Graph "
            "Systems' (VLDB 2018): run simulated experiment cells, grids, "
            "and analyses."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("datasets", help="describe the synthetic datasets")
    p.add_argument("--size", default="small", help="tiny|small|medium")

    p = sub.add_parser("run", help="run one experiment cell")
    p.add_argument("system", choices=sorted(ENGINE_KEYS))
    p.add_argument("workload", choices=WORKLOAD_NAMES + EXTENSION_WORKLOADS)
    p.add_argument("dataset", choices=DATASET_NAMES)
    p.add_argument("-m", "--machines", type=int, default=16)
    p.add_argument("--size", default="small")
    p.add_argument("--trace", metavar="FILE",
                   help="write the run's journal (JSONL) here")
    _add_exec_options(p)

    p = sub.add_parser("grid", help="run one result grid (Figures 6-9)")
    p.add_argument("workload", choices=WORKLOAD_NAMES + EXTENSION_WORKLOADS)
    p.add_argument("--datasets", nargs="+", default=["twitter", "uk0705", "wrn"])
    p.add_argument("--machines", nargs="+", type=int, default=list(CLUSTER_SIZES))
    p.add_argument("--size", default="small")
    p.add_argument("--log", help="append results to this JSONL file")
    p.add_argument("--trace", metavar="DIR",
                   help="write one journal per cell into this directory "
                        "(plus the scheduler's own _scheduler.jsonl)")
    p.add_argument("-v", "--verbose", action="store_true",
                   help="print one progress line per finished cell")
    _add_exec_options(p)

    p = sub.add_parser(
        "bench-grid",
        help="time the benchmark PageRank grid at jobs=1 vs jobs=N",
    )
    p.add_argument("--jobs", type=int, default=None,
                   help="parallel worker count (default: cpu count, min 2)")
    p.add_argument("-o", "--output", default="BENCH_grid.json",
                   help="where the JSON record goes")
    p.add_argument("--history", default=None, metavar="FILE",
                   help="append the record here as one JSON line (default: "
                        "BENCH_history.jsonl next to the output; '' skips)")

    p = sub.add_parser(
        "bench-elastic",
        help="benchmark mid-run rescaling per recovery mechanism "
             "-> BENCH_elastic.json",
    )
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes (default: cpu count)")
    p.add_argument("-o", "--output", default="BENCH_elastic.json",
                   help="where the JSON record goes")
    p.add_argument("--history", default=None, metavar="FILE",
                   help="append the record here as one JSON line (default: "
                        "BENCH_history.jsonl next to the output; '' skips)")

    p = sub.add_parser("cost", help="the COST experiment (Table 9)")
    p.add_argument("--datasets", nargs="+", default=["twitter", "uk0705", "wrn"])
    p.add_argument("--workloads", nargs="+", default=["pagerank", "sssp", "wcc"])

    p = sub.add_parser("weak", help="weak-scaling extension experiment")
    p.add_argument("system", choices=sorted(ENGINE_KEYS))
    p.add_argument("workload", choices=WORKLOAD_NAMES + EXTENSION_WORKLOADS)
    p.add_argument("dataset", choices=DATASET_NAMES)
    p.add_argument("--machines", nargs="+", type=int, default=list(CLUSTER_SIZES))

    p = sub.add_parser("findings", help="verify the paper's major findings")
    p.add_argument("--extensions", action="store_true",
                   help="also verify the beyond-the-paper extension findings")

    p = sub.add_parser(
        "chaos",
        help="fault injection: the MTTR-vs-fault-intensity grid per system",
    )
    p.add_argument("--systems", nargs="+", default=list(DEFAULT_SYSTEMS),
                   choices=sorted(ENGINE_KEYS), metavar="SYS",
                   help=f"systems under chaos (default: {' '.join(DEFAULT_SYSTEMS)})")
    p.add_argument("--workload", default="pagerank",
                   choices=WORKLOAD_NAMES + EXTENSION_WORKLOADS)
    p.add_argument("--dataset", default="twitter", choices=DATASET_NAMES)
    p.add_argument("-m", "--machines", type=int, default=16)
    p.add_argument("--size", default="small")
    p.add_argument("--faults", nargs="+", default=list(DEFAULT_FAULTS),
                   choices=FAULT_KINDS, metavar="KIND",
                   help=f"fault kinds to inject (default: {' '.join(DEFAULT_FAULTS)}; "
                        f"all: {' '.join(FAULT_KINDS)})")
    p.add_argument("--intensities", nargs="+", type=int, default=[1, 2, 3],
                   metavar="N", help="faults per run (default: 1 2 3)")
    p.add_argument("--seed", type=int, default=0,
                   help="chaos seed: fault-to-machine assignment (default 0)")
    p.add_argument("--checkpoint-interval", type=int, default=10, metavar="K",
                   help="supersteps between checkpoints for checkpointing "
                        "systems (default 10)")
    p.add_argument("--trace", metavar="DIR",
                   help="write one journal per faulted cell (and per "
                        "fault-free reference) into this directory")
    p.add_argument("-v", "--verbose", action="store_true",
                   help="print one progress line per finished cell")
    _add_exec_options(p)

    p = sub.add_parser(
        "elastic",
        help="elastic rescaling: what each recovery mechanism pays to "
             "grow or shrink a cluster mid-run",
    )
    p.add_argument("--systems", nargs="+", default=list(ELASTIC_SYSTEMS),
                   choices=sorted(ENGINE_KEYS), metavar="SYS",
                   help=f"systems to rescale (default: {' '.join(ELASTIC_SYSTEMS)})")
    p.add_argument("--workload", default="pagerank",
                   choices=WORKLOAD_NAMES + EXTENSION_WORKLOADS)
    p.add_argument("--dataset", default="twitter", choices=DATASET_NAMES)
    p.add_argument("-m", "--machines", type=int, default=16)
    p.add_argument("--size", default="small")
    p.add_argument("--directions", nargs="+", default=list(DIRECTIONS),
                   choices=DIRECTIONS, metavar="DIR",
                   help="rescale directions (default: out in)")
    p.add_argument("--timings", nargs="+", type=float,
                   default=list(DEFAULT_TIMINGS), metavar="FRAC",
                   help="when to rescale, as a fraction of the reference "
                        "run's supersteps (default: 0.3 0.7)")
    p.add_argument("--magnitudes", nargs="+", type=int,
                   default=list(DEFAULT_MAGNITUDES), metavar="N",
                   help="machines added/removed per rescale (default: 4)")
    p.add_argument("--seed", type=int, default=0,
                   help="chaos seed threaded into the rescale plan (default 0)")
    p.add_argument("--checkpoint-interval", type=int, default=10, metavar="K",
                   help="supersteps between checkpoints for checkpointing "
                        "systems (default 10)")
    p.add_argument("--trace", metavar="DIR",
                   help="write one journal per rescaled cell (and per "
                        "clean reference) into this directory")
    p.add_argument("-v", "--verbose", action="store_true",
                   help="print one progress line per finished cell")
    _add_exec_options(p)

    p = sub.add_parser(
        "report",
        help="perf & cost report — or regression diff — from logs, "
             "journals, trace dirs, and bench records",
    )
    p.add_argument("paths", nargs="+", metavar="PATH",
                   help="runs-log JSONL, run journal, trace directory, "
                        "BENCH_grid.json, or BENCH_history.jsonl")
    p.add_argument("-o", "--output", help="write the report here (default stdout)")
    p.add_argument("--diff", action="store_true",
                   help="compare exactly two inputs; exit 1 on any "
                        "threshold-crossing regression (the CI gate)")
    p.add_argument("--threshold", type=float, default=0.05, metavar="REL",
                   help="relative time-regression threshold for --diff "
                        "(default 0.05 = 5%%)")
    p.add_argument("--cost-threshold", type=float, default=None, metavar="REL",
                   help="relative dollars-regression threshold for --diff "
                        "(default: same as --threshold)")
    p.add_argument("--top", type=int, default=10,
                   help="hot-span rows per input (default 10)")

    p = sub.add_parser(
        "trace", help="inspect or convert a run journal (JSONL)"
    )
    p.add_argument("journal", help="journal file written by 'repro run --trace'")
    p.add_argument("--chrome", metavar="FILE",
                   help="export Chrome trace_event JSON (Perfetto-loadable)")
    p.add_argument("--csv", metavar="FILE",
                   help="export the per-superstep series as CSV")
    p.add_argument("--summary", action="store_true",
                   help="print the phase timeline and hottest spans "
                        "(default when no export is requested)")
    p.add_argument("--top", type=int, default=5,
                   help="how many span groups the summary ranks (default 5)")

    p = sub.add_parser(
        "serve",
        help="run the benchmark-as-a-service daemon (fair queue + "
             "shared warm cache)",
    )
    p.add_argument("--socket", default=None, metavar="ADDR",
                   help="unix socket path or host:port (default: "
                        ".repro-serve.sock)")
    p.add_argument("--cache-dir", default=".repro-cache", metavar="DIR",
                   help="shared result cache (default: .repro-cache)")
    p.add_argument("--no-cache", action="store_true",
                   help="serve without a result cache (every cell re-runs)")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="worker processes per job (default 1: inline, "
                        "deterministic service order)")
    p.add_argument("--max-queue", type=int, default=256, metavar="CELLS",
                   help="admission-control bound on queued cells (default 256)")
    p.add_argument("--cache-budget", type=int, default=None, metavar="CELLS",
                   help="bound the shared result cache to this many cells "
                        "(LRU eviction; default: unbounded)")
    p.add_argument("--deadline", type=float, default=0.0, metavar="SECONDS",
                   help="default per-job deadline in host seconds from "
                        "submission (default 0: none)")
    p.add_argument("--journal", default="_server.jsonl", metavar="FILE",
                   help="the daemon's own journal, written at shutdown "
                        "(default: _server.jsonl; '' skips)")

    p = sub.add_parser(
        "submit",
        help="submit one experiment grid to a running serve daemon",
    )
    p.add_argument("workload", choices=WORKLOAD_NAMES + EXTENSION_WORKLOADS)
    p.add_argument("--systems", nargs="+", default=None, metavar="SYS",
                   help="systems to run (default: the workload's figure "
                        "lineup)")
    p.add_argument("--datasets", nargs="+", default=["twitter"],
                   choices=DATASET_NAMES)
    p.add_argument("-m", "--machines", nargs="+", type=int, default=[16])
    p.add_argument("--size", default="small")
    p.add_argument("--socket", default=None, metavar="ADDR",
                   help="daemon address (default: .repro-serve.sock)")
    p.add_argument("--client", default="cli", help="client identity for "
                   "fair-share accounting (default: cli)")
    p.add_argument("--priority", type=int, default=0,
                   help="strict service class; higher runs first (default 0)")
    p.add_argument("--weight", type=float, default=1.0,
                   help="fair share inside the priority class (default 1.0)")
    p.add_argument("--deadline", type=float, default=0.0, metavar="SECONDS",
                   help="cancel the job if not finished this many host "
                        "seconds after submission (default 0: none)")
    p.add_argument("--timeout", type=float, default=600.0,
                   help="seconds to wait for completion (default 600)")
    p.add_argument("--trace", metavar="DIR",
                   help="write one journal per served cell into this "
                        "directory (byte-identical to 'repro grid --trace')")

    p = sub.add_parser(
        "serve-ctl",
        help="control a running serve daemon (ping/stats/status/cancel/"
             "drain/shutdown)",
    )
    p.add_argument("action",
                   choices=("ping", "stats", "status", "cancel", "drain",
                            "shutdown"))
    p.add_argument("--socket", default=None, metavar="ADDR",
                   help="daemon address (default: .repro-serve.sock)")
    p.add_argument("--job", metavar="ID",
                   help="job id for status/cancel")

    p = sub.add_parser(
        "serve-bench",
        help="seeded Zipf load test of the daemon -> BENCH_serve.json",
    )
    p.add_argument("--clients", type=int, default=120,
                   help="simulated client count (default 120)")
    p.add_argument("--seed", type=int, default=2018,
                   help="load-pattern seed (default 2018)")
    p.add_argument("--size", default="tiny", choices=("tiny", "small", "medium"),
                   help="dataset size served (default tiny)")
    p.add_argument("--max-queue", type=int, default=96, metavar="CELLS",
                   help="admission-control bound in cells (default 96)")
    p.add_argument("-o", "--output", default="BENCH_serve.json",
                   help="where the JSON record goes")
    p.add_argument("--history", default=None, metavar="FILE",
                   help="append the record here as one JSON line (default: "
                        "BENCH_history.jsonl next to the output; '' skips)")
    p.add_argument("--journal", default=None, metavar="FILE",
                   help="also write the daemon's _server.jsonl here")

    p = sub.add_parser(
        "lint",
        help="static analysis of the model contracts "
             "(RPL001-RPL010; --deep adds RPL011-RPL024)",
    )
    p.add_argument("paths", nargs="*", default=["src"],
                   help="files or directories to lint (default: src)")
    p.add_argument("--format", choices=("text", "json", "github"),
                   default="text")
    p.add_argument("--select",
                   help="comma-separated rule codes or prefixes to run")
    p.add_argument("--ignore",
                   help="comma-separated rule codes or prefixes to skip")
    p.add_argument("--deep", action="store_true",
                   help="also run the whole-program pass (RPL011-RPL024)")
    p.add_argument("--baseline", metavar="FILE",
                   help="suppress findings recorded in this baseline file")
    p.add_argument("--update-baseline", action="store_true",
                   help="rewrite --baseline with every current finding")
    p.add_argument("--ast-cache", metavar="FILE",
                   help="parsed-AST pickle shared between lint steps")
    p.add_argument("--list-rules", action="store_true",
                   help="print every rule with its rationale and exit")
    p.add_argument("--explain", metavar="CODE",
                   help="print one rule's rationale, discipline, and "
                        "minimal example, then exit (2 on unknown codes)")

    return parser


def _cmd_datasets(args) -> int:
    rows = []
    for name in DATASET_NAMES:
        dataset = load_dataset(name, args.size)
        stats = compute_stats(dataset.graph)
        rows.append({
            "dataset": name,
            "|V|": stats.num_vertices,
            "|E|": stats.num_edges,
            "avg deg": round(stats.avg_degree, 2),
            "max deg": stats.max_degree,
            "diameter>=": estimate_diameter(dataset.graph),
            "stands in for |E|": dataset.profile.num_edges,
        })
    print(render_table(rows, title=f"Synthetic datasets ({args.size})"))
    return 0


def _trace_filename(result, tag: str = "") -> str:
    """A collision-free, filesystem-safe per-cell journal filename.

    System keys hold characters like ``*`` that need replacing, and two
    distinct keys can sanitize to the same text (``BB*`` and ``BB-``),
    so the name carries a short digest of the *raw* cell coordinates:
    distinct cells can never target the same path, while the name stays
    stable across runs (the parallel-vs-sequential byte comparison
    depends on that). ``tag`` distinguishes runs that share coordinates
    but differ otherwise — chaos variants of the same cell. Writes
    themselves are atomic via :meth:`repro.obs.Journal.write`.
    """
    import hashlib
    import re

    stem = (f"{result.system}_{result.workload}_{result.dataset}"
            f"_{result.cluster_size}")
    if tag:
        stem += f"_{tag}"
    digest = hashlib.sha256(stem.encode("utf-8")).hexdigest()[:8]
    safe = re.sub(r"[^A-Za-z0-9_.+-]", "-", stem)
    return f"{safe}.{digest}.jsonl"


def _cli_cache(args):
    """The executor cache requested by the shared CLI flags."""
    return None if args.no_cache else args.cache_dir


def _cmd_run(args) -> int:
    from .core.runner import ExperimentSpec
    from .exec import execute_grid
    from .obs import one_line_summary

    spec = ExperimentSpec(
        systems=(args.system,),
        workloads=(args.workload,),
        datasets=(args.dataset,),
        cluster_sizes=(args.machines,),
        dataset_size=args.size,
    )
    execution = execute_grid(
        spec, jobs=1, cache=_cli_cache(args), resume=args.resume
    )
    result = next(iter(execution.grid.cells.values()))
    print(render_table([{
        "system": result.system,
        "workload": result.workload,
        "dataset": result.dataset,
        "machines": result.cluster_size,
        "load s": round(result.load_time, 1),
        "execute s": round(result.execute_time, 1),
        "save s": round(result.save_time, 1),
        "total s": round(result.total_time, 1),
        "iterations": result.iterations,
        "cell": result.cell(),
    }]))
    print(one_line_summary(result))
    if execution.report.cache_hits:
        print("cell served from the result cache (use --no-cache to re-run)")
    if args.trace and result.observation is not None:
        lines = result.observation.journal().write(args.trace)
        print(f"journal: {lines} events written to {args.trace}")
    if not result.ok:
        print(f"failure: {result.failure_detail}")
    return 0 if result.ok else 1


def _cmd_grid(args) -> int:
    from .core.runner import ExperimentSpec
    from .exec import execute_grid, print_progress

    spec = ExperimentSpec(
        systems=systems_for_workload(args.workload),
        workloads=(args.workload,),
        datasets=tuple(args.datasets),
        cluster_sizes=tuple(args.machines),
        dataset_size=args.size,
    )
    execution = execute_grid(
        spec,
        jobs=args.jobs,
        cache=_cli_cache(args),
        resume=args.resume,
        progress=print_progress if args.verbose else None,
    )
    grid = execution.grid
    print(render_grid(
        grid, args.workload, args.datasets, args.machines,
        systems_for_workload(args.workload),
        title=f"{args.workload} results (total response seconds)",
    ))
    print(execution.report.summary())
    completed = grid.completed()
    if completed:
        from .obs import one_line_summary

        slowest = max(completed, key=lambda r: r.total_time)
        print(f"\nslowest cell {slowest.system} {slowest.workload}/"
              f"{slowest.dataset}@{slowest.cluster_size} — "
              f"{one_line_summary(slowest)}")
    if args.trace:
        from pathlib import Path

        trace_dir = Path(args.trace)
        trace_dir.mkdir(parents=True, exist_ok=True)
        written = 0
        for result in grid.cells.values():
            if result.observation is None:
                continue
            result.observation.journal().write(trace_dir / _trace_filename(result))
            written += 1
        execution.scheduler_journal().write(trace_dir / "_scheduler.jsonl")
        print(f"{written} cell journals (+ _scheduler.jsonl) written to "
              f"{trace_dir}/")
    if args.log:
        count = write_log(grid.cells.values(), args.log)
        print(f"\n{count} runs appended to {args.log}")
    return 0


def _cmd_bench_grid(args) -> int:
    from .exec.bench import run_bench

    run_bench(jobs=args.jobs, output=args.output, history=args.history)
    return 0


def _cmd_bench_elastic(args) -> int:
    from .elastic.bench import run_bench

    record = run_bench(jobs=args.jobs, output=args.output,
                       history=args.history)
    return 0 if record["bit_equal"] else 1


def _cmd_cost(args) -> int:
    rows = cost_experiment(
        datasets=tuple(args.datasets), workloads=tuple(args.workloads)
    )
    print(render_table(
        [{
            "dataset": r.dataset,
            "workload": r.workload,
            "single thread s": round(r.single_thread_seconds, 1),
            "best parallel s": round(r.best_parallel_seconds or 0, 1),
            "winner": r.best_parallel_system or "-",
            "COST (S/P)": round(r.cost, 3) if r.cost else "-",
        } for r in rows],
        title="COST experiment (16-machine clusters vs one thread)",
    ))
    return 0


def _cmd_weak(args) -> int:
    points = weak_scaling_experiment(
        args.system, args.workload, args.dataset,
        cluster_sizes=tuple(args.machines),
    )
    efficiency = dict(weak_efficiency(points))
    print(render_table(
        [{
            "machines": p.machines,
            "paper |E|": p.paper_edges,
            "total s": round(p.time, 1) if p.result.ok else p.result.cell(),
            "efficiency": round(efficiency.get(p.machines, 0.0), 2),
        } for p in points],
        title=(f"Weak scaling: {args.system} / {args.workload} on "
               f"{args.dataset}-shaped data (constant load per machine)"),
    ))
    return 0


def _cmd_chaos(args) -> int:
    from .chaos.experiment import recovery_cost_experiment
    from .exec import print_progress

    report = recovery_cost_experiment(
        systems=tuple(args.systems),
        workload=args.workload,
        dataset=args.dataset,
        cluster_size=args.machines,
        dataset_size=args.size,
        faults=tuple(args.faults),
        intensities=tuple(args.intensities),
        seed=args.seed,
        checkpoint_interval=args.checkpoint_interval,
        jobs=args.jobs,
        cache_dir=_cli_cache(args),
        resume=args.resume,
        progress=print_progress if args.verbose else None,
    )

    grouped: dict = {}
    for cell in report.cells:
        grouped.setdefault((cell.system, cell.fault), {})[cell.intensity] = cell
    rows = []
    for (system, fault), cells in grouped.items():
        row = {
            "system": system,
            "mechanism": next(iter(cells.values())).mechanism,
            "fault": fault,
        }
        for intensity in args.intensities:
            cell = cells.get(intensity)
            row[f"x{intensity}"] = cell.cell_text() if cell else "-"
        rows.append(row)
    print(render_table(
        rows,
        title=(f"MTTR (+end-to-end overhead) seconds — {args.workload}/"
               f"{args.dataset}@{args.machines} machines, seed {args.seed}, "
               f"checkpoint interval {args.checkpoint_interval}"),
    ))
    for system, reference in report.clean.items():
        if not reference.ok:
            print(f"note: fault-free {system} reference failed "
                  f"({reference.cell()}); its chaos cells were skipped")

    if args.trace:
        from pathlib import Path

        trace_dir = Path(args.trace)
        trace_dir.mkdir(parents=True, exist_ok=True)
        written = 0
        for reference in report.clean.values():
            if reference.observation is None:
                continue
            reference.observation.journal().write(
                trace_dir / _trace_filename(reference, tag="clean"))
            written += 1
        for cell in report.cells:
            if cell.faulted.observation is None:
                continue
            cell.faulted.observation.journal().write(trace_dir / _trace_filename(
                cell.faulted, tag=f"{cell.fault}x{cell.intensity}"))
            written += 1
        print(f"{written} journals written to {trace_dir}/")

    mismatches = report.mismatches()
    if mismatches:
        print("\nANSWER MISMATCH — faulted runs must return answers "
              "bit-equal to the fault-free reference:")
        for cell in mismatches:
            print(f"  {cell.system} {cell.fault} x{cell.intensity}")
        return 1
    completed = sum(1 for c in report.cells if c.completed)
    print(f"\nall {completed} completed faulted runs returned bit-exact "
          f"answers (vs their fault-free references)")
    return 0


def _cmd_elastic(args) -> int:
    from .elastic import elasticity_experiment
    from .exec import print_progress

    report = elasticity_experiment(
        systems=tuple(args.systems),
        workload=args.workload,
        dataset=args.dataset,
        cluster_size=args.machines,
        dataset_size=args.size,
        directions=tuple(args.directions),
        timings=tuple(args.timings),
        magnitudes=tuple(args.magnitudes),
        seed=args.seed,
        checkpoint_interval=args.checkpoint_interval,
        jobs=args.jobs,
        cache_dir=_cli_cache(args),
        resume=args.resume,
        progress=print_progress if args.verbose else None,
    )

    grouped: dict = {}
    for cell in report.cells:
        key = (cell.system, cell.direction, cell.magnitude)
        grouped.setdefault(key, {})[cell.timing] = cell
    rows = []
    for (system, direction, magnitude), cells in grouped.items():
        row = {
            "system": system,
            "mechanism": next(iter(cells.values())).mechanism,
            "rescale": f"{direction} x{magnitude}",
        }
        for timing in args.timings:
            cell = cells.get(timing)
            row[f"t={timing:g}"] = cell.cell_text() if cell else "-"
        rows.append(row)
    print(render_table(
        rows,
        title=(f"rescale seconds (+end-to-end overhead) — {args.workload}/"
               f"{args.dataset}@{args.machines} machines, seed {args.seed}, "
               f"checkpoint interval {args.checkpoint_interval}"),
    ))
    tolerance = report.tolerance_by_mechanism()
    dollars = report.dollars_by_mechanism()
    for mechanism in sorted(tolerance):
        tolerated, total = tolerance[mechanism]
        line = f"  {mechanism}: {tolerated}/{total} rescales tolerated"
        if mechanism in dollars:
            line += f", ${dollars[mechanism]:.2f} per rescale"
        print(line)
    for system, reference in report.clean.items():
        if not reference.ok:
            print(f"note: clean {system} reference failed "
                  f"({reference.cell()}); its rescale cells were skipped")

    if args.trace:
        from pathlib import Path

        trace_dir = Path(args.trace)
        trace_dir.mkdir(parents=True, exist_ok=True)
        written = 0
        for reference in report.clean.values():
            if reference.observation is None:
                continue
            reference.observation.journal().write(
                trace_dir / _trace_filename(reference, tag="clean"))
            written += 1
        for cell in report.cells:
            if cell.rescaled.observation is None:
                continue
            cell.rescaled.observation.journal().write(
                trace_dir / _trace_filename(
                    cell.rescaled,
                    tag=f"{cell.direction}{cell.magnitude}s{cell.at_superstep}",
                ))
            written += 1
        print(f"{written} journals written to {trace_dir}/")

    mismatches = report.mismatches()
    if mismatches:
        print("\nANSWER MISMATCH — rescaled runs must return answers "
              "bit-equal to the fixed-size reference:")
        for cell in mismatches:
            print(f"  {cell.system} {cell.direction} x{cell.magnitude} "
                  f"@superstep {cell.at_superstep}")
        return 1
    completed = sum(1 for c in report.cells if c.completed)
    print(f"\nall {completed} completed rescaled runs returned bit-exact "
          f"answers (vs their fixed-size references)")
    return 0


def _cmd_findings(args) -> int:
    from .core import verify_all_findings

    findings = verify_all_findings(include_extensions=args.extensions)
    rows = [{
        "finding": f.key,
        "section": f.section,
        "verdict": "SUPPORTED" if f.supported else "NOT SUPPORTED",
    } for f in findings]
    print(render_table(rows, title="The paper's major findings, re-verified"))
    for f in findings:
        print(f"\n[{f.key}] {f.claim}")
        for name, value in f.evidence.items():
            print(f"    {name}: {value}")
    return 0 if all(f.supported for f in findings) else 1


def _emit_report(text: str, output: Optional[str]) -> None:
    if output:
        with open(output, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"report written to {output}")
    else:
        print(text)


def _cmd_report(args) -> int:
    from .obs import report as perf

    if args.diff:
        if len(args.paths) != 2:
            print("error: --diff compares exactly two inputs",
                  file=sys.stderr)
            return 2
        try:
            diff = perf.diff_sources(
                perf.load_source(args.paths[0]),
                perf.load_source(args.paths[1]),
                threshold=args.threshold,
                cost_threshold=args.cost_threshold,
            )
        except perf.ReportError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        _emit_report(diff.render(), args.output)
        return diff.exit_code

    sections: List[str] = []
    perf_sources: List = []
    try:
        for path in args.paths:
            if perf.classify_path(path) == perf.KIND_LEGACY_LOG:
                from .analysis import read_log

                grid = read_log(path)
                sections.append(
                    grid_report(grid, title=f"Experiment report — {path}")
                )
            else:
                perf_sources.append(perf.load_source(path))
    except perf.ReportError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if perf_sources:
        sections.append(perf.render_report(perf_sources, top=args.top))
    _emit_report("\n\n".join(sections), args.output)
    return 0


def _cmd_trace(args) -> int:
    from .obs import (Journal, JournalError, render_summary, write_chrome,
                      write_superstep_csv)

    try:
        journal = Journal.read(args.journal)
    except JournalError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    exported = False
    if args.chrome:
        count = write_chrome(journal, args.chrome)
        print(f"chrome trace: {count} events written to {args.chrome} "
              f"(load in Perfetto or chrome://tracing)")
        exported = True
    if args.csv:
        rows = write_superstep_csv(journal, args.csv)
        print(f"superstep csv: {rows} rows written to {args.csv}")
        exported = True
    if args.summary or not exported:
        print(render_summary(journal, top=args.top))
    return 0


def _serve_address(args) -> str:
    """The daemon rendezvous requested by --socket (or its default)."""
    if args.socket:
        return args.socket
    from .serve import DEFAULT_SOCKET

    return DEFAULT_SOCKET


def _cmd_serve(args) -> int:
    from .serve import ServeDaemon

    daemon = ServeDaemon(
        address=_serve_address(args),
        cache=_cli_cache(args),
        jobs=args.jobs,
        max_queue_cells=args.max_queue,
        cache_budget=args.cache_budget,
        default_deadline=args.deadline,
        journal_path=args.journal or None,
    )
    budget = f", cache budget: {args.cache_budget} cells" \
        if args.cache_budget else ""
    print(f"repro serve: listening on {daemon.address} "
          f"(cache: {'off' if args.no_cache else args.cache_dir}, "
          f"queue bound: {args.max_queue} cells{budget})")
    print("stop with 'repro serve-ctl shutdown' on the same socket")
    try:
        daemon.serve_forever()
    except KeyboardInterrupt:
        daemon.stop()
    if daemon.journal_path is not None:
        print(f"server journal written to {daemon.journal_path}")
    return 0


def _cmd_submit(args) -> int:
    from .serve import ServeClient, ServeError, grid_from_payloads

    systems = tuple(args.systems) if args.systems else systems_for_workload(
        args.workload)
    try:
        with ServeClient(_serve_address(args), client=args.client) as link:
            request = link.request(
                systems=systems, workloads=(args.workload,),
                datasets=args.datasets, cluster_sizes=args.machines,
                dataset_size=args.size,
                priority=args.priority, weight=args.weight,
                deadline=args.deadline,
            )
            job_id = link.submit(request)
            print(f"submitted {job_id} ({request.cells} cells) as "
                  f"{args.client!r}")
            status = link.wait(job_id, timeout=args.timeout)
            payloads = link.fetch_payloads(job_id)
    except (ServeError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    grid = grid_from_payloads(payloads)
    print(render_grid(
        grid, args.workload, args.datasets, args.machines, systems,
        title=f"{args.workload} results via {job_id} "
              f"(total response seconds)",
    ))
    print(f"{status['completed']} cells: {status['cache_hits']} served "
          f"from the warm cache, {status['executed']} executed")
    if args.trace:
        from pathlib import Path

        trace_dir = Path(args.trace)
        trace_dir.mkdir(parents=True, exist_ok=True)
        written = 0
        for result in grid.cells.values():
            if result.observation is None:
                continue
            result.observation.journal().write(
                trace_dir / _trace_filename(result))
            written += 1
        print(f"{written} cell journals written to {trace_dir}/")
    return 0


def _cmd_serve_ctl(args) -> int:
    import json

    from .serve import ServeClient, ServeError

    if args.action in ("status", "cancel") and not args.job:
        print(f"error: {args.action} needs --job", file=sys.stderr)
        return 2
    try:
        with ServeClient(_serve_address(args), client="serve-ctl") as link:
            if args.action == "ping":
                response = link.ping()
            elif args.action == "stats":
                response = link.stats()
            elif args.action == "status":
                response = link.status(args.job)
            elif args.action == "cancel":
                response = link.cancel(args.job)
            elif args.action == "drain":
                response = link.drain()
            else:
                response = link.shutdown()
    except (ServeError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if response.get("cancelling"):
        print(f"cancelling {args.job}: takes effect at the next cell "
              f"boundary")
    print(json.dumps(response, indent=2, sort_keys=True))
    return 0


def _cmd_serve_bench(args) -> int:
    from .serve.loadgen import run_loadgen

    record = run_loadgen(
        clients=args.clients, seed=args.seed, dataset_size=args.size,
        max_queue_cells=args.max_queue, output=args.output,
        history=args.history, journal=args.journal,
    )
    return 0 if record["bit_equal_spotcheck"] else 1


def _cmd_lint(args) -> int:
    from .lint.cli import run_lint

    return run_lint(
        paths=args.paths,
        fmt=args.format,
        select=args.select,
        list_rules=args.list_rules,
        ignore=args.ignore,
        deep=args.deep,
        baseline=args.baseline,
        update_baseline=args.update_baseline,
        ast_cache=args.ast_cache,
        explain=args.explain,
    )


_COMMANDS = {
    "datasets": _cmd_datasets,
    "run": _cmd_run,
    "grid": _cmd_grid,
    "bench-grid": _cmd_bench_grid,
    "bench-elastic": _cmd_bench_elastic,
    "cost": _cmd_cost,
    "weak": _cmd_weak,
    "findings": _cmd_findings,
    "chaos": _cmd_chaos,
    "elastic": _cmd_elastic,
    "report": _cmd_report,
    "trace": _cmd_trace,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "serve-ctl": _cmd_serve_ctl,
    "serve-bench": _cmd_serve_bench,
    "lint": _cmd_lint,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except BrokenPipeError:
        # output piped into head/less that exited early; not an error
        sys.stderr.close()
        return 0


if __name__ == "__main__":
    sys.exit(main())
