"""repro: reproduction of "Experimental Analysis of Distributed Graph
Systems" (Ammar & Ozsu, VLDB 2018).

The package simulates the paper's eight distributed graph processing
systems over synthetic, paper-shaped datasets, runs the paper's four
workloads for real, and regenerates every table and figure of the
evaluation. See DESIGN.md for the architecture and EXPERIMENTS.md for
paper-vs-measured results.

Quickstart::

    from repro import run_cell, load_dataset
    dataset = load_dataset("twitter", "small")
    result = run_cell("BV", "pagerank", dataset, cluster_size=16)
    print(result.total_time, result.iterations)
"""

from .cluster import CLUSTER_SIZES, ClusterSpec, FailureKind
from .core import (
    ExperimentSpec,
    ResultGrid,
    cost_experiment,
    paper_grid,
    run_cell,
    run_grid,
)
from .datasets import DATASET_NAMES, Dataset, load_dataset
from .engines import (
    ENGINE_KEYS,
    GRID_SYSTEMS,
    PAGERANK_SYSTEMS,
    RunResult,
    make_engine,
    make_workload,
    systems_for_workload,
    workload_for,
)
from .graph import Graph, GraphBuilder
from .workloads import SSSP, WCC, KHop, PageRank

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Graph",
    "GraphBuilder",
    "Dataset",
    "load_dataset",
    "DATASET_NAMES",
    "ClusterSpec",
    "CLUSTER_SIZES",
    "FailureKind",
    "PageRank",
    "WCC",
    "SSSP",
    "KHop",
    "make_engine",
    "make_workload",
    "workload_for",
    "ENGINE_KEYS",
    "GRID_SYSTEMS",
    "PAGERANK_SYSTEMS",
    "RunResult",
    "systems_for_workload",
    "run_cell",
    "run_grid",
    "paper_grid",
    "ExperimentSpec",
    "ResultGrid",
    "cost_experiment",
]
