"""Extension: CDLP (LDBC Graphalytics' community detection) on every system.

The paper compares its workload suite with LDBC Graphalytics (§6);
CDLP is the Graphalytics workload it does not run. Because every engine
here executes generic supersteps, the comparison extends for free — and
the shape matches the paper's other analytic workload (PageRank):
Blogel wins, the approximate-friendly GraphLab variants are close, the
Hadoop/Spark family trails by an order of magnitude.
"""

from common import once, write_output

from repro.analysis import render_grid
from repro.cluster import ClusterSpec
from repro.core.runner import ExperimentSpec, run_grid
from repro.engines import GRID_SYSTEMS

SIZES = (16, 64)


def build_grid():
    spec = ExperimentSpec(
        systems=GRID_SYSTEMS,
        workloads=("cdlp",),
        datasets=("twitter", "uk0705"),
        cluster_sizes=SIZES,
    )
    return run_grid(spec)


def test_extension_cdlp_grid(benchmark):
    grid = once(benchmark, build_grid)
    text = render_grid(
        grid, "cdlp", datasets=("twitter", "uk0705"), cluster_sizes=SIZES,
        systems=GRID_SYSTEMS,
        title="Extension: CDLP (10 label-propagation rounds), total seconds",
    )
    write_output("ablation_cdlp", text)

    # everything completes on Twitter; the winner pattern matches the
    # paper's analytic workloads
    for system in GRID_SYSTEMS:
        assert grid.get(system, "cdlp", "twitter", 16).ok, system
    best = grid.best_system("cdlp", "twitter", 16)
    assert best.system in ("BV", "BB", "GL-S-A-I", "GL-S-R-I")

    # the uncombinable messages make CDLP relatively harder for the
    # network-bound systems: Hadoop/GraphX trail by > 10x
    bv = grid.get("BV", "cdlp", "twitter", 16).total_time
    for slow in ("HD", "S"):
        assert grid.get(slow, "cdlp", "twitter", 16).total_time > 10 * bv

    # UK at 16 machines reproduces the reverse-edge memory cliff for
    # Giraph (like WCC, §5.8); 64 machines clears it
    assert not grid.get("G", "cdlp", "uk0705", 16).ok
    assert grid.get("G", "cdlp", "uk0705", 64).ok
