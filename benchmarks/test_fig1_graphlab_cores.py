"""Figure 1: GraphLab compute-core allocation on a 16-machine cluster.

Synchronous PageRank (30 iterations, Twitter) gains ~40 % from using
all 4 cores for computation; asynchronous computation does not benefit
(context switching while vertices also communicate) and can get worse.
"""

from common import once, write_output

from repro.analysis import bar_chart
from repro.core import graphlab_core_study


def study():
    return graphlab_core_study(dataset_name="twitter", cluster_size=16,
                               iterations=30)


def test_fig1_graphlab_core_allocation(benchmark):
    results = once(benchmark, study)
    values = {
        f"{r.mode} / {r.compute_cores} cores": r.execute_seconds
        for r in results
    }
    text = bar_chart(
        values,
        title=("Figure 1: GraphLab PageRank x30 on Twitter, 16 machines "
               "(execution time by compute-core allocation)"),
    )
    write_output("fig1_graphlab_cores", text)

    by_key = {(r.mode, r.compute_cores): r.execute_seconds for r in results}
    sync_gain = 1.0 - by_key[("sync", 4)] / by_key[("sync", 2)]
    # the paper reports ~40% improvement for synchronous with all cores
    assert 0.25 < sync_gain < 0.55
    # asynchronous does not benefit — and sometimes under-performs
    assert by_key[("async", 4)] >= by_key[("async", 2)]
