"""Shared helpers for the table/figure benchmarks.

Every benchmark regenerates one table or figure of the paper: it runs
the relevant experiment cells, renders the same rows/series the paper
reports, writes them to ``benchmarks/output/<name>.txt``, prints them,
and asserts the *shape* findings (who wins, what fails, how things
grow). Expensive grids are memoized so related figures share runs.
"""

from __future__ import annotations

from functools import lru_cache
from pathlib import Path

from repro.core import ResultGrid, paper_grid
from repro.core.runner import ExperimentSpec, run_grid

OUTPUT_DIR = Path(__file__).parent / "output"

#: paper cluster sizes
SIZES = (16, 32, 64, 128)
#: the three datasets of the main grids (ClueWeb is separate, Table 7)
MAIN_DATASETS = ("twitter", "uk0705", "wrn")


def write_output(name: str, text: str) -> Path:
    """Persist one reproduced table/figure and echo it."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    path = OUTPUT_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    print(f"\n{text}\n[written to {path}]")
    return path


@lru_cache(maxsize=None)
def workload_grid(workload: str) -> ResultGrid:
    """The full result grid for one workload (Figures 6-9), memoized."""
    return paper_grid(workload, datasets=MAIN_DATASETS, cluster_sizes=SIZES)


@lru_cache(maxsize=None)
def twitter_grid() -> ResultGrid:
    """Figure 5's grid: Twitter, all four workloads, all sizes."""
    from repro.engines import GRID_SYSTEMS

    spec = ExperimentSpec(
        systems=GRID_SYSTEMS,
        workloads=("pagerank", "khop", "sssp", "wcc"),
        datasets=("twitter",),
        cluster_sizes=SIZES,
    )
    return run_grid(spec)


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
