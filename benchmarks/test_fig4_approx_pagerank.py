"""Figure 4: vertex updates, approximate vs exact PageRank.

The approximate implementation (GraphLab's tolerance mode) lets
converged vertices opt out; most converge within the first few
iterations, so the per-iteration update ratio collapses quickly.
"""

from common import once, write_output

from repro.analysis import line_chart
from repro.datasets import load_dataset
from repro.engines.base import make_workload


def measure():
    series = {}
    for name in ("twitter", "uk0705", "wrn"):
        dataset = load_dataset(name, "small")
        exact = make_workload("pagerank", dataset)
        approx = make_workload("pagerank", dataset, approximate=True)
        graph = dataset.graph
        exact_state = exact.run_to_completion(graph)
        approx_state = approx.run_to_completion(graph)
        n = graph.num_vertices
        ratios = []
        for i, stats in enumerate(approx_state.history):
            exact_active = (
                exact_state.history[min(i, len(exact_state.history) - 1)].active_vertices
            )
            ratios.append((i + 1, stats.active_vertices / max(exact_active, 1)))
        series[name] = ratios
    return series


def test_fig4_approximate_updates(benchmark):
    series = once(benchmark, measure)
    text = line_chart(
        series,
        title=("Figure 4: fraction of vertices still updating, "
               "approximate vs exact PageRank"),
    )
    write_output("fig4_approx_pagerank", text)

    for name, points in series.items():
        ratios = [r for _, r in points]
        # everyone participates at the start...
        assert ratios[0] == 1.0
        # ...and almost nobody by the end (Fig 4's collapse)
        assert ratios[-1] < 0.05, name
        # the collapse is fast: within the first third of iterations the
        # active fraction halves
        third = max(1, len(ratios) // 3)
        assert min(ratios[:third + 1]) < 0.9
