"""Ablation: vertical scalability — the §5.12 dimension the paper skips.

Fixed 16-machine cluster, per-machine cores swept 2→16 (r3 family
style). Compute-bound analytics gain; barrier-bound road-network
traversals do not; and memory-scaled instances rescue GraphLab's WRN
OOM without adding machines.
"""

from common import once, write_output

from repro.analysis import render_table
from repro.core import vertical_scaling_experiment


def measure():
    rows = []
    for system, workload, dataset in (
        ("BV", "pagerank", "twitter"),
        ("GL-S-R-I", "pagerank", "twitter"),
        ("BV", "sssp", "wrn"),
    ):
        points = vertical_scaling_experiment(
            system, workload, dataset, cores_options=(2, 4, 8, 16)
        )
        base = points[0].time
        for p in points:
            rows.append({
                "System": system,
                "Workload": f"{workload}/{dataset}",
                "Cores": p.cores,
                "Total s": round(p.time, 1),
                "Speedup": round(base / p.time, 2),
            })
    # the memory dimension: fat nodes instead of more nodes
    thin = vertical_scaling_experiment(
        "GL-S-R-I", "pagerank", "wrn", cores_options=(4,), scale_memory=False
    )[0]
    fat = vertical_scaling_experiment(
        "GL-S-R-I", "pagerank", "wrn", cores_options=(16,), scale_memory=True
    )[0]
    memory_rows = [
        {"Instance": "16 x 4-core/30.5GB", "Cell": thin.result.cell()},
        {"Instance": "16 x 16-core/122GB", "Cell": fat.result.cell()},
    ]
    return rows, memory_rows


def test_ablation_vertical_scaling(benchmark):
    rows, memory_rows = once(benchmark, measure)
    text = render_table(
        rows,
        title=("Vertical scaling at 16 machines (cores per machine swept) "
               "— the dimension §5.12 leaves out"),
    )
    text += "\n\n" + render_table(
        memory_rows,
        title="Fat nodes vs more nodes: GraphLab-random PageRank on WRN",
    )
    write_output("ablation_vertical_scaling", text)

    by = {(r["System"], r["Workload"], r["Cores"]): r for r in rows}
    # analytics gain substantially from 2 -> 16 cores
    assert by[("BV", "pagerank/twitter", 16)]["Speedup"] > 2.5
    # the diameter-bound traversal gains almost nothing
    assert by[("BV", "sssp/wrn", 16)]["Speedup"] < 1.15
    # and fat memory rescues the §5.2 OOM
    assert memory_rows[0]["Cell"] == "OOM"
    assert memory_rows[1]["Cell"] not in ("OOM", "TO")
