"""Table 8: total Giraph memory across the cluster (GB), by dataset/size.

Paper values (GB):

    Twitter (12.5 GB raw):  191.5  323.6  606.4   923.5
    UK0705  (31.9 GB raw):  264.0  411.8  717.6  1322.6
    WRN     (13.6 GB raw):  363.7  475.4  683.4  1054.1
"""

from common import SIZES, once, write_output

from repro.analysis import render_table
from repro.cluster import ClusterSpec, GB
from repro.datasets import load_dataset
from repro.engines import make_engine, workload_for

PAPER = {
    "twitter": {16: 191.5, 32: 323.6, 64: 606.4, 128: 923.5},
    "uk0705": {16: 264.0, 32: 411.8, 64: 717.6, 128: 1322.6},
    "wrn": {16: 363.7, 32: 475.4, 64: 683.4, 128: 1054.1},
}


def measure():
    rows = []
    for name in ("twitter", "uk0705", "wrn"):
        dataset = load_dataset(name, "small")
        row = {"Dataset": name, "Raw GB": round(dataset.profile.raw_size_bytes / GB, 1)}
        for machines in SIZES:
            engine = make_engine("G")
            workload = workload_for(engine, "pagerank", dataset)
            result = engine.run(dataset, workload, ClusterSpec(machines))
            row[f"{machines} mach"] = round(result.total_memory_bytes / GB, 1)
            row[f"{machines} (paper)"] = PAPER[name][machines]
        rows.append(row)
    return rows


def test_table8_giraph_memory(benchmark):
    rows = once(benchmark, measure)
    text = render_table(
        rows, title="Table 8: total Giraph memory across the cluster (GB)"
    )
    write_output("table8_giraph_memory", text)

    for row in rows:
        series = [row[f"{m} mach"] for m in SIZES]
        # memory grows monotonically with cluster size (the paper's point)
        assert series == sorted(series)
        # and is an order of magnitude above the raw dataset size
        assert series[0] > 5 * row["Raw GB"]
        # measured values stay within 2x of the paper's
        for machines in SIZES:
            measured, paper = row[f"{machines} mach"], row[f"{machines} (paper)"]
            assert 0.5 < measured / paper < 2.0, (row["Dataset"], machines)
    # WRN uses the most memory at 16 machines (vertex-heavy), like the paper
    at16 = {r["Dataset"]: r["16 mach"] for r in rows}
    assert at16["wrn"] == max(at16.values())
