"""Figure 6: PageRank across all systems, datasets, and cluster sizes."""

from common import MAIN_DATASETS, SIZES, once, workload_grid, write_output

from repro.analysis import render_grid
from repro.cluster import FailureKind
from repro.engines import PAGERANK_SYSTEMS


def test_fig6_pagerank_grid(benchmark):
    grid = once(benchmark, lambda: workload_grid("pagerank"))
    text = render_grid(
        grid, "pagerank", datasets=MAIN_DATASETS, cluster_sizes=SIZES,
        systems=PAGERANK_SYSTEMS,
        title="Figure 6: PageRank, total response seconds (or failure cell)",
    )
    write_output("fig6_pagerank_grid", text)

    # Blogel-B's MPI overflow wipes out its entire WRN row (§5.1)
    for size in SIZES:
        assert grid.cell_text("BB", "pagerank", "wrn", size) == "MPI"

    # GraphLab cannot run WRN on 16 machines with any configuration (§5.2)
    for system in PAGERANK_SYSTEMS:
        if system.startswith("GL"):
            result = grid.get(system, "pagerank", "wrn", 16)
            assert result.failure is FailureKind.OOM, system

    # the async configurations OOM on WRN at 128 (Figure 10's event)
    for system in ("GL-A-R-T", "GL-A-A-T"):
        assert grid.get(system, "pagerank", "wrn", 128).failure is FailureKind.OOM

    # GraphLab's approximate (tolerance) PageRank is the only
    # implementation that outperforms exact Blogel (§5.2)
    for size in (32, 64, 128):
        bv = grid.get("BV", "pagerank", "twitter", size)
        approx = grid.get("GL-S-R-T", "pagerank", "twitter", size)
        exact = grid.get("GL-S-R-I", "pagerank", "twitter", size)
        assert approx.total_time < bv.total_time, size
        assert exact.total_time > approx.total_time, size

    # Hadoop and GraphX dominate the top of every completed column
    for dataset in MAIN_DATASETS:
        for size in SIZES:
            cells = [
                grid.get(s, "pagerank", dataset, size) for s in PAGERANK_SYSTEMS
            ]
            ok = sorted((r for r in cells if r and r.ok), key=lambda r: r.total_time)
            if len(ok) >= 3:
                assert {r.system for r in ok[-2:]} <= {"HD", "HL", "S"}, (dataset, size)

    # strong scaling: Blogel-V improves monotonically with cluster size
    for dataset in MAIN_DATASETS:
        series = [grid.get("BV", "pagerank", dataset, m).total_time for m in SIZES]
        assert all(b <= a * 1.05 for a, b in zip(series, series[1:])), dataset
