"""Ablation: Blogel-B with the dataset-specific partitioners of §2.3.

The paper runs Blogel-B only with the generic Graph-Voronoi partitioner
and notes — without measuring — that coordinate- and URL-prefix-based
partitioning exist. This ablation measures what that choice cost:

* on the road network, coordinate blocks avoid the MPI overflow
  entirely and let the block-centric engine collapse the 48 000
  supersteps that kill every vertex-centric system;
* on the web graph, URL-prefix blocks cut the cross-block edge
  fraction several-fold.
"""

from common import once, write_output

from repro.analysis import render_table
from repro.cluster import ClusterSpec
from repro.datasets import load_dataset
from repro.engines import make_engine, workload_for
from repro.partitioning import url_prefix_partition, voronoi_partition


def run(key, workload_name, dataset, machines=16):
    engine = make_engine(key)
    workload = workload_for(engine, workload_name, dataset)
    return engine.run(dataset, workload, ClusterSpec(machines))


def measure():
    wrn = load_dataset("wrn", "small")
    uk = load_dataset("uk0705", "small")
    rows = []
    for key, dataset, workload in (
        ("BB", wrn, "sssp"), ("BB-coord", wrn, "sssp"), ("BV", wrn, "sssp"),
        ("BB", wrn, "wcc"), ("BB-coord", wrn, "wcc"), ("BV", wrn, "wcc"),
        ("BB", uk, "wcc"), ("BB-url", uk, "wcc"),
    ):
        result = run(key, workload, dataset, 64)
        rows.append({
            "System": key,
            "Dataset": dataset.name,
            "Workload": workload,
            "Cell": result.cell(),
            "Execute s": round(result.execute_time, 1) if result.ok else "-",
        })
    cuts = {
        "voronoi": voronoi_partition(uk.graph, 64).block_cut_fraction(),
        "url-prefix": url_prefix_partition(
            uk.graph, 64, pages_per_host=uk.meta()["pages_per_host"]
        ).block_cut_fraction(),
    }
    return rows, cuts


def test_ablation_dataset_specific_partitioners(benchmark):
    rows, cuts = once(benchmark, measure)
    text = render_table(
        rows,
        title="Ablation: Blogel-B partitioner choice (64 machines)",
    )
    text += (
        f"\n\nUK0705 block-cut fraction: voronoi={cuts['voronoi']:.3f}, "
        f"url-prefix={cuts['url-prefix']:.3f}"
    )
    write_output("ablation_partitioners", text)

    cell = {(r["System"], r["Dataset"], r["Workload"]): r for r in rows}
    # the GVD partitioner crashes on WRN; coordinates do not
    assert cell[("BB", "wrn", "sssp")]["Cell"] == "MPI"
    assert cell[("BB-coord", "wrn", "sssp")]["Cell"] not in ("MPI", "OOM", "TO")
    # and block-centric execution then crushes vertex-centric Blogel
    coord = cell[("BB-coord", "wrn", "sssp")]["Execute s"]
    bv = cell[("BV", "wrn", "sssp")]["Execute s"]
    assert coord < 0.25 * bv
    coord_wcc = cell[("BB-coord", "wrn", "wcc")]["Execute s"]
    bv_wcc = cell[("BV", "wrn", "wcc")]["Execute s"]
    assert coord_wcc < 0.25 * bv_wcc
    # URL prefixes shrink the web graph's cross-block fraction
    assert cuts["url-prefix"] < 0.6 * cuts["voronoi"]
    assert (
        cell[("BB-url", "uk0705", "wcc")]["Execute s"]
        < cell[("BB", "uk0705", "wcc")]["Execute s"]
    )
