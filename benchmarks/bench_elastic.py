"""The elasticity benchmark, runnable from the repo root::

    PYTHONPATH=src python -m benchmarks.bench_elastic [--jobs N] [-o FILE]

Runs the tiny rescale grid (one system per Table 1 recovery mechanism,
scale-out and scale-in at two superstep timings), gates on bit-equal
answers, and writes the record to ``BENCH_elastic.json`` — the same
entry point as ``repro bench-elastic`` (see :mod:`repro.elastic.bench`).
"""

import sys

from repro.elastic.bench import main

if __name__ == "__main__":
    sys.exit(main())
