"""The benchmark harness: one module per reproduced table/figure.

A package (not just a directory of pytest files) so the executor
benchmark can run as ``python -m benchmarks.bench_grid``.
"""
