"""Figure 10: GraphLab memory traces, sync vs async, PageRank on WRN @128.

The asynchronous mode's distributed-lock queues hold memory without
releasing it; per-machine usage climbs through the run until a machine
crosses 30.5 GB and the computation dies. Synchronous memory stays
flat after loading.
"""

import numpy as np

from common import once, write_output

from repro.analysis import line_chart
from repro.cluster import Cluster, ClusterSpec, GB, SimulatedFailure
from repro.datasets import load_dataset
from repro.engines import make_engine, workload_for


def trace(key):
    """Per-machine memory series for one GraphLab run (may OOM)."""
    dataset = load_dataset("wrn", "small")
    engine = make_engine(key)
    workload = workload_for(engine, "pagerank", dataset)
    spec = ClusterSpec(128)
    cluster = Cluster(spec, num_workers=engine.workers_for(spec))
    from repro.engines.base import RunResult

    result = RunResult(system=key, workload="pagerank", dataset="wrn",
                       cluster_size=128)
    failed = False
    try:
        engine._load(dataset, workload, cluster, result)
        engine._execute(dataset, workload, cluster, result, 1.0)
    except SimulatedFailure:
        failed = True
    series = {}
    for machine in (0, 31, 63, 95):
        points = cluster.tracker.memory_series(machine)
        series[f"machine {machine}"] = [(t, b / GB) for t, b in points]
    return series, failed


def measure():
    return {"async": trace("GL-A-R-T"), "sync": trace("GL-S-R-T")}


def test_fig10_async_memory_blowup(benchmark):
    traces = once(benchmark, measure)
    async_series, async_failed = traces["async"]
    sync_series, sync_failed = traces["sync"]

    text = "\n\n".join([
        line_chart(async_series,
                   title="Figure 10(a): async GraphLab memory per machine (GB)"),
        line_chart(sync_series,
                   title="Figure 10(b): sync GraphLab memory per machine (GB)"),
    ])
    write_output("fig10_async_memory", text)

    # async dies, sync survives
    assert async_failed and not sync_failed

    # the async heavy machine's memory climbs monotonically to the cliff
    heavy = async_series["machine 0"]
    values = [v for _, v in heavy]
    assert values[-1] > 25.0               # near the 30.5 GB capacity
    assert values[-1] > 2.5 * values[0]    # grew a lot during execution

    # sync memory is flat after load: final within 20% of post-load level
    sync_heavy = [v for _, v in sync_series["machine 0"]]
    assert sync_heavy[-1] < 1.2 * max(sync_heavy[:2])
