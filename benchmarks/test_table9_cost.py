"""Table 9 / §5.13: the COST experiment — single thread vs best parallel.

Paper values (seconds; P = best parallel on 16 machines, S = single thread):

                PageRank        SSSP            WCC
    Twitter   BV=260 / 490   BV=48.3 / 422   GL=248    / 452
    UK0705    BV=338.7/ 720  BV=122.3/ 610   GL=492.67 / 632
    WRN       BV=268.3/ 880  BV=11295/ 455   BV=19831  / 640

Headline: PageRank's best parallel config is 2-3x the single thread;
reachability on the road network is ~25-30x *slower* than one thread
(COST 0.04 / 0.03).
"""

from common import once, write_output

from repro.analysis import render_table
from repro.core import cost_experiment

PAPER = {
    ("twitter", "pagerank"): (260.0, 490.0), ("twitter", "sssp"): (48.3, 422.0),
    ("twitter", "wcc"): (248.0, 452.0),
    ("uk0705", "pagerank"): (338.7, 720.0), ("uk0705", "sssp"): (122.3, 610.0),
    ("uk0705", "wcc"): (492.67, 632.0),
    ("wrn", "pagerank"): (268.3, 880.0), ("wrn", "sssp"): (11295.0, 455.0),
    ("wrn", "wcc"): (19831.0, 640.0),
}


def run_cost():
    rows = cost_experiment(
        datasets=("twitter", "uk0705", "wrn"),
        workloads=("pagerank", "sssp", "wcc"),
    )
    table = []
    for row in rows:
        paper_p, paper_s = PAPER[(row.dataset, row.workload)]
        table.append({
            "Dataset": row.dataset,
            "Workload": row.workload,
            "P (best parallel)": round(row.best_parallel_seconds or 0, 1),
            "winner": row.best_parallel_system or "-",
            "S (single thread)": round(row.single_thread_seconds, 1),
            "S/P": round(row.cost, 2) if row.cost else "-",
            "P (paper)": paper_p,
            "S (paper)": paper_s,
            "S/P (paper)": round(paper_s / paper_p, 2),
        })
    return table


def test_table9_cost_experiment(benchmark):
    table = once(benchmark, run_cost)
    text = render_table(
        table, title="Table 9: single thread (S) vs best 16-machine parallel (P)"
    )
    write_output("table9_cost", text)

    cell = {(r["Dataset"], r["Workload"]): r for r in table}
    # PageRank: the cluster wins by 2-3x on every dataset
    for name in ("twitter", "uk0705", "wrn"):
        assert 1.5 < cell[(name, "pagerank")]["S/P"] < 4.5
    # reachability on WRN: the cluster is two orders of magnitude slower
    assert cell[("wrn", "sssp")]["S/P"] < 0.1
    assert cell[("wrn", "wcc")]["S/P"] < 0.1
    # WRN parallel traversals land within 2.5x of the paper's absolute times
    for wl in ("sssp", "wcc"):
        measured = cell[("wrn", wl)]["P (best parallel)"]
        paper = cell[("wrn", wl)]["P (paper)"]
        assert 0.4 < measured / paper < 2.5
    # the single-thread times are hundreds of seconds, like the paper's
    for r in table:
        assert 100 < r["S (single thread)"] < 2000
