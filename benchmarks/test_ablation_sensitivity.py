"""Ablation: which reproduced findings survive calibration perturbation.

The reviewer's objection to any simulation-based reproduction is that
the constants were chosen to produce the result. This bench perturbs
every shared cost constant by 0.5x and 2x, one at a time, and re-checks
a panel of finding predicates. Structural findings survive; the one
finding the paper itself hedges on (§7: Giraph vs GraphLab might be a
language artifact) is the one that flips.
"""

from common import once, write_output

from repro.analysis import render_table
from repro.cluster import ClusterSpec
from repro.core import PERTURBABLE_CONSTANTS, sensitivity_analysis
from repro.datasets import load_dataset
from repro.engines import make_engine, workload_for


def run(key, wl, ds="twitter", m=16):
    d = load_dataset(ds, "small")
    e = make_engine(key)
    return e.run(d, workload_for(e, wl, d), ClusterSpec(m))


PREDICATES = {
    "blogel beats hadoop (PR, twitter@16)": lambda: (
        run("BV", "pagerank").total_time < run("HD", "pagerank").total_time
    ),
    "graphx slowest in-memory (PR, twitter@16)": lambda: (
        run("S", "pagerank").total_time
        > max(run(k, "pagerank").total_time for k in ("BV", "G", "FG"))
    ),
    "vertica loses to blogel (PR, uk@32)": lambda: (
        run("V", "pagerank", "uk0705", 32).total_time
        > run("BV", "pagerank", "uk0705", 32).total_time
    ),
    "wrn sssp still fails for giraph @16": lambda: (
        not run("G", "sssp", "wrn").ok
    ),
    "giraph beats graphlab-random @16 (the §7 caveat)": lambda: (
        run("G", "pagerank").total_time < run("GL-S-R-I", "pagerank").total_time
    ),
}


def analyse():
    return sensitivity_analysis(PREDICATES, constants=PERTURBABLE_CONSTANTS,
                                factors=(0.5, 2.0))


def test_ablation_calibration_sensitivity(benchmark):
    results = once(benchmark, analyse)
    rows = [{
        "Finding": r.predicate,
        "Baseline": "holds" if r.baseline else "fails",
        "Robust to +/-2x": "yes" if r.robust else "NO",
        "Flips under": ", ".join(f"{c} x{f}" for c, f in r.flips) or "-",
    } for r in results]
    text = render_table(
        rows,
        title=("Calibration sensitivity: each cost constant perturbed "
               "0.5x / 2x, one at a time"),
    )
    write_output("ablation_sensitivity", text)

    by_name = {r.predicate: r for r in results}
    # structural findings survive every perturbation
    for name in (
        "blogel beats hadoop (PR, twitter@16)",
        "graphx slowest in-memory (PR, twitter@16)",
        "vertica loses to blogel (PR, uk@32)",
        "wrn sssp still fails for giraph @16",
    ):
        assert by_name[name].robust, name
    # the §7-hedged finding is calibration-sensitive, as the paper suspects
    giraph = by_name["giraph beats graphlab-random @16 (the §7 caveat)"]
    assert giraph.baseline
    assert not giraph.robust
