"""Figure 7: K-hop (K=3) across all systems, datasets, and cluster sizes."""

from common import MAIN_DATASETS, SIZES, once, workload_grid, write_output

from repro.analysis import render_grid
from repro.engines import GRID_SYSTEMS


def test_fig7_khop_grid(benchmark):
    grid = once(benchmark, lambda: workload_grid("khop"))
    text = render_grid(
        grid, "khop", datasets=MAIN_DATASETS, cluster_sizes=SIZES,
        systems=GRID_SYSTEMS,
        title="Figure 7: K-hop (K=3), total response seconds",
    )
    write_output("fig7_khop_grid", text)

    # K-hop's fixed 3 iterations make it diameter-insensitive: systems
    # that fail WRN's traversals complete its K-hop (§5.12, §3.3)
    for system in ("HD", "HL", "FG"):
        for size in SIZES:
            assert grid.get(system, "khop", "wrn", size).ok, (system, size)

    # HaLoop survives even at 128 machines: 3 iterations stay under the
    # shuffle bug's trigger
    assert grid.get("HL", "khop", "twitter", 128).ok

    # response time is load-dominated, so K-hop columns are much faster
    # than the same systems' WCC columns
    wcc = workload_grid("wcc")
    for system in ("BV", "G", "FG"):
        k = grid.get(system, "khop", "twitter", 16)
        w = wcc.get(system, "wcc", "twitter", 16)
        if k and w and k.ok and w.ok:
            assert k.total_time < w.total_time

    # Blogel-B's K-hop execution benefits from Voronoi blocks: its
    # execute time stays within a small multiple of BV's
    bb = grid.get("BB", "khop", "uk0705", 16)
    bv = grid.get("BV", "khop", "uk0705", 16)
    assert bb.execute_time < 3 * bv.execute_time
