"""Table 7: Blogel-V on ClueWeb, 128 machines — the only survivor (§5.9).

Paper values (seconds):

    Workload   Read    Execute  Save   Others
    PageRank   132.5   139.7    10.5   15.3
    WCC        134.1   152.5    11.5   10.6
    SSSP       158.3    89.3     2.2   20.7
    K-hop      161.6     0.03    0.2   16.4
"""

from common import once, write_output

from repro.analysis import render_table
from repro.cluster import ClusterSpec
from repro.datasets import load_dataset
from repro.engines import make_engine, workload_for

PAPER = {
    "pagerank": (132.5, 139.7, 10.5),
    "wcc": (134.1, 152.5, 11.5),
    "sssp": (158.3, 89.3, 2.2),
    "khop": (161.6, 0.03, 0.2),
}


def run_clueweb():
    dataset = load_dataset("clueweb", "small")
    rows = []
    for workload_name in ("pagerank", "wcc", "sssp", "khop"):
        engine = make_engine("BV")
        workload = workload_for(engine, workload_name, dataset)
        result = engine.run(dataset, workload, ClusterSpec(128))
        paper = PAPER[workload_name]
        rows.append({
            "Workload": workload_name,
            "Read": round(result.load_time, 1),
            "Execute": round(result.execute_time, 1),
            "Save": round(result.save_time, 1),
            "Read (paper)": paper[0],
            "Execute (paper)": paper[1],
            "Save (paper)": paper[2],
            "Status": result.cell(),
        })
    return rows


def others_fail():
    dataset = load_dataset("clueweb", "small")
    outcomes = {}
    for key in ("BB", "G", "GL-S-R-I", "S", "FG"):
        engine = make_engine(key)
        workload = workload_for(engine, "pagerank", dataset)
        outcomes[key] = engine.run(dataset, workload, ClusterSpec(128)).cell()
    return outcomes


def test_table7_blogel_on_clueweb(benchmark):
    rows = once(benchmark, run_clueweb)
    text = render_table(
        rows, title="Table 7: Blogel-V on ClueWeb (128 machines), seconds per phase"
    )
    write_output("table7_clueweb", text)

    by_wl = {r["Workload"]: r for r in rows}
    # every workload completes, in minutes not hours
    for r in rows:
        assert r["Status"] not in ("OOM", "TO", "MPI", "SHFL")
        assert r["Read"] + r["Execute"] < 3600
    # reads land near the paper's ~130-160 s window
    for r in rows:
        assert 60 < r["Read"] < 320
    # per-workload execute ordering matches the paper:
    # pagerank > wcc > sssp >> khop (~0)
    assert by_wl["pagerank"]["Execute"] > by_wl["sssp"]["Execute"]
    assert by_wl["wcc"]["Execute"] > by_wl["sssp"]["Execute"]
    assert by_wl["khop"]["Execute"] < 0.2 * by_wl["sssp"]["Execute"]


def test_table7_only_bv_survives(benchmark):
    outcomes = once(benchmark, others_fail)
    text = render_table(
        [dict({"System": k}, Outcome=v) for k, v in outcomes.items()],
        title="ClueWeb at 128 machines: every other system fails (§5.9)",
    )
    write_output("table7_clueweb_failures", text)
    assert all(v in ("OOM", "MPI", "TO") for v in outcomes.values())
