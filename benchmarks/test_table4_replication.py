"""Table 4: GraphLab's replication factor, Random vs Auto, per cluster size.

Paper values for reference (replication factors):

    Twitter: 16: 9.3/5.5   32: 13.3/9.8  64: 17.8/9.1  128: 22.5/15.2
    WRN:     16: NA/NA     32: 3.0/2.2   64: 3.0/3.0   128: 3.0/2.3
    UK0705:  16: 5.7/NA    32: 15.8/3.6  64: 21.5/10.1 128: 27.1/4.5

The synthetic graphs are denser, so absolute factors differ; the shape
assertions cover what the paper concludes from the table.
"""

from common import SIZES, once, write_output

from repro.analysis import render_table
from repro.datasets import load_dataset
from repro.partitioning import auto_method_for, auto_partition, random_edge_partition

PAPER_VALUES = {
    ("twitter", 16): (9.3, 5.5), ("twitter", 32): (13.3, 9.8),
    ("twitter", 64): (17.8, 9.1), ("twitter", 128): (22.5, 15.2),
    ("wrn", 32): (3.0, 2.2), ("wrn", 64): (3.0, 3.0), ("wrn", 128): (3.0, 2.3),
    ("uk0705", 16): (5.7, None), ("uk0705", 32): (15.8, 3.6),
    ("uk0705", 64): (21.5, 10.1), ("uk0705", 128): (27.1, 4.5),
}


def build_table4():
    rows = []
    for name in ("twitter", "wrn", "uk0705"):
        graph = load_dataset(name, "small").graph
        for machines in SIZES:
            paper = PAPER_VALUES.get((name, machines), (None, None))
            rand = random_edge_partition(graph, machines).replication_factor()
            auto = auto_partition(graph, machines)
            rows.append({
                "Dataset": name,
                "Cluster": machines,
                "Random": round(rand, 1),
                "Auto": round(auto.replication_factor(), 1),
                "Auto scheme": auto.method,
                "Random (paper)": paper[0] if paper[0] is not None else "NA",
                "Auto (paper)": paper[1] if paper[1] is not None else "NA",
            })
    return rows


def test_table4_replication_factor(benchmark):
    rows = once(benchmark, build_table4)
    text = render_table(rows, title="Table 4: The replication factor in GraphLab")
    write_output("table4_replication", text)

    cell = {(r["Dataset"], r["Cluster"]): r for r in rows}
    # auto <= random everywhere (the point of constrained partitioning)
    for r in rows:
        assert r["Auto"] <= r["Random"]
    # random replication grows with the cluster for power-law graphs
    for name in ("twitter", "uk0705"):
        series = [cell[(name, m)]["Random"] for m in SIZES]
        assert series == sorted(series)
        assert series[-1] > 1.5 * series[0]
    # WRN's bounded degree caps replication: far below the social graph
    assert cell[("wrn", 128)]["Random"] < 0.5 * cell[("twitter", 128)]["Random"]
    # Auto's scheme selection matches §4.4.1
    assert [auto_method_for(m) for m in SIZES] == [
        "grid", "oblivious", "grid", "oblivious"
    ]
    # the UK web graph profits most from Oblivious (locality), §5.4 / Table 4
    assert cell[("uk0705", 32)]["Auto"] < 0.5 * cell[("uk0705", 32)]["Random"]
