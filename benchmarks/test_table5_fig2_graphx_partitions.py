"""Table 5 + Figure 2: GraphX's partition count — defaults, tuning, sweep.

Table 5 records the partition counts the paper used per (dataset,
cluster size); Figure 2 shows how the count changes PageRank time on
Twitter and UK0705 (the default 1200 for UK is far from optimal).
"""

from common import SIZES, once, write_output

from repro.analysis import bar_chart, render_table
from repro.cluster import ClusterSpec
from repro.core import graphx_partition_sweep, recommended_graphx_partitions
from repro.datasets import load_dataset
from repro.engines.spark import default_partitions

# Table 5's published partition counts
PAPER_TABLE5 = {
    "twitter": {"blocks": 440, 16: 128, 32: 256, 64: 440, 128: 440},
    "wrn": {"blocks": 240, 16: 128, 32: 240, 64: 240, 128: 240},
    "uk0705": {"blocks": 1200, 16: 128, 32: 256, 64: 512, 128: 1024},
}


def build_table5():
    rows = []
    for name in ("twitter", "wrn", "uk0705"):
        dataset = load_dataset(name, "small")
        row = {
            "Dataset": name,
            "#blocks (model)": default_partitions(dataset),
            "#blocks (paper)": PAPER_TABLE5[name]["blocks"],
        }
        for machines in SIZES:
            row[f"{machines} mach"] = recommended_graphx_partitions(dataset, machines)
            row[f"{machines} (paper)"] = PAPER_TABLE5[name][machines]
        rows.append(row)
    return rows


def test_table5_partition_counts(benchmark):
    rows = once(benchmark, build_table5)
    text = render_table(rows, title="Table 5: GraphX partition counts per cluster size")
    write_output("table5_graphx_partitions", text)

    for row in rows:
        counts = [row[f"{m} mach"] for m in SIZES]
        # the tuning rule never shrinks with more machines...
        assert counts == sorted(counts)
        # ...and never exceeds the block count or twice the core count
        for machines, count in zip(SIZES, counts):
            assert count <= max(row["#blocks (model)"], (machines - 1) * 4 * 2)
            assert count <= 2 * (machines - 1) * 4


def sweep_uk():
    counts = (60, 120, 256, 512, 1200)
    return graphx_partition_sweep("uk0705", 64, counts)


def test_fig2_partition_sweep(benchmark):
    results = once(benchmark, sweep_uk)
    values = {
        f"{count} partitions": (r.total_time if r.ok else None)
        for count, r in results.items()
    }
    text = bar_chart(values, title="Figure 2(b): GraphX PageRank on UK0705, 64 machines")
    write_output("fig2_graphx_partition_sweep", text)

    ok = {c: r.total_time for c, r in results.items() if r.ok}
    assert len(ok) >= 3
    # the extremes are both worse than the best middle setting:
    # too few partitions under-utilize cores, too many cause waves+skew
    best = min(ok.values())
    assert ok.get(1200, best * 10) > best * 1.1   # UK's default is not optimum
