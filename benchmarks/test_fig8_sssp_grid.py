"""Figure 8: SSSP across all systems, datasets, and cluster sizes."""

from common import MAIN_DATASETS, SIZES, once, workload_grid, write_output

from repro.analysis import render_grid
from repro.cluster import FailureKind
from repro.engines import GRID_SYSTEMS


def test_fig8_sssp_grid(benchmark):
    grid = once(benchmark, lambda: workload_grid("sssp"))
    text = render_grid(
        grid, "sssp", datasets=MAIN_DATASETS, cluster_sizes=SIZES,
        systems=GRID_SYSTEMS,
        title="Figure 8: SSSP, total response seconds",
    )
    write_output("fig8_sssp_grid", text)

    # the WRN row is a graveyard: O(diameter) iterations kill almost
    # everything (§5.8); only Blogel-V completes at every size
    for size in SIZES:
        assert grid.get("BV", "sssp", "wrn", size).ok
    failures_at_16 = sum(
        0 if grid.get(s, "sssp", "wrn", 16).ok else 1 for s in GRID_SYSTEMS
    )
    assert failures_at_16 >= 6

    # Hadoop / HaLoop time out on WRN (they re-read the graph 36 000
    # times); Giraph times out too (Table 6's 6 s/iteration)
    assert grid.get("HD", "sssp", "wrn", 16).failure is FailureKind.TIMEOUT
    assert grid.get("G", "sssp", "wrn", 16).failure is FailureKind.TIMEOUT

    # on the power-law datasets SSSP is cheap (few iterations): BV's
    # response is within ~2x of its K-hop response
    khop = workload_grid("khop")
    for dataset in ("twitter", "uk0705"):
        s = grid.get("BV", "sssp", dataset, 16)
        k = khop.get("BV", "khop", dataset, 16)
        assert s.total_time < 3 * k.total_time

    # scalability is muted for traversals: most vertices sit idle per
    # iteration (§5.12) — BV's speedup 16->128 stays below linear (8x)
    t16 = grid.get("BV", "sssp", "twitter", 16).total_time
    t128 = grid.get("BV", "sssp", "twitter", 128).total_time
    assert t16 / t128 < 8.0
