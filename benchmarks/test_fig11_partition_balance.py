"""Figure 11: GraphX's uneven partition placement on a 128-machine cluster.

A balanced distribution of UK0705's 1200 partitions over 128 machines
would put ~9.4 on each; the paper observed one machine holding 54.
"""

import numpy as np

from common import once, write_output

from repro.analysis import histogram
from repro.engines.spark import partition_placement


def measure():
    return partition_placement("uk0705", 1200, 127)


def test_fig11_partition_imbalance(benchmark):
    counts = once(benchmark, measure)
    text = histogram(
        counts.tolist(), bins=10,
        title=("Figure 11: partitions per machine, UK0705 (1200 partitions, "
               f"128 machines; fair share = {1200 / 127:.1f})"),
    )
    text += f"\nmax = {counts.max()} partitions on one machine"
    write_output("fig11_partition_balance", text)

    fair = 1200 / 127
    assert counts.sum() == 1200
    # the most loaded machine holds several times the fair share
    # (the paper observed 54 vs 9.4)
    assert counts.max() > 3 * fair
    # while the median machine sits near or below the fair share
    assert np.median(counts) <= fair * 1.5
