"""Figure 9: WCC across all systems, datasets, and cluster sizes."""

from common import MAIN_DATASETS, SIZES, once, workload_grid, write_output

from repro.analysis import render_grid
from repro.cluster import FailureKind
from repro.engines import GRID_SYSTEMS


def test_fig9_wcc_grid(benchmark):
    grid = once(benchmark, lambda: workload_grid("wcc"))
    text = render_grid(
        grid, "wcc", datasets=MAIN_DATASETS, cluster_sizes=SIZES,
        systems=GRID_SYSTEMS,
        title="Figure 9: WCC, total response seconds",
    )
    write_output("fig9_wcc_grid", text)

    # §5.8's Giraph narrative: UK0705 fails to load at 16/32; WRN OOMs
    # at 16, cannot finish at 32, and takes almost 24 hours at 64
    assert grid.get("G", "wcc", "uk0705", 16).failure is FailureKind.OOM
    assert grid.get("G", "wcc", "uk0705", 32).failure is FailureKind.OOM
    assert grid.get("G", "wcc", "uk0705", 64).ok
    assert grid.get("G", "wcc", "wrn", 16).failure is FailureKind.OOM
    assert grid.get("G", "wcc", "wrn", 32).failure is FailureKind.TIMEOUT
    giraph64 = grid.get("G", "wcc", "wrn", 64)
    assert giraph64.ok and giraph64.total_time > 0.8 * 86400

    # Blogel-V is the only system that computes WCC on WRN at 16 (§5.8)
    ok16 = [s for s in GRID_SYSTEMS if grid.get(s, "wcc", "wrn", 16).ok]
    assert ok16 == ["BV"]

    # Gelly: UK0705 succeeds everywhere; WRN only at 128, just under 24h
    for size in SIZES:
        assert grid.get("FG", "wcc", "uk0705", size).ok
    for size in (16, 32, 64):
        assert grid.get("FG", "wcc", "wrn", size).failure is FailureKind.TIMEOUT
    gelly128 = grid.get("FG", "wcc", "wrn", 128)
    assert gelly128.ok and 0.85 * 86400 < gelly128.total_time < 86400

    # GraphX loses WCC on WRN at every size (§5.6)
    for size in SIZES:
        assert grid.get("S", "wcc", "wrn", size).failure in (
            FailureKind.OOM, FailureKind.TIMEOUT
        )

    # GraphLab auto partitioning cuts execution time vs random (§5.8)
    rand = grid.get("GL-S-R-I", "wcc", "uk0705", 64)
    auto = grid.get("GL-S-A-I", "wcc", "uk0705", 64)
    assert auto.execute_time < rand.execute_time
