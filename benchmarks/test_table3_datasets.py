"""Table 3: dataset characteristics — paper scale vs the synthetic stand-ins."""

from common import once, write_output

from repro.analysis import render_table
from repro.datasets import DATASET_NAMES, PAPER_PROFILES, load_dataset
from repro.graph import compute_stats, estimate_diameter


def build_table3():
    rows = []
    for name in DATASET_NAMES:
        profile = PAPER_PROFILES[name]
        dataset = load_dataset(name, "small")
        stats = compute_stats(dataset.graph)
        rows.append({
            "Dataset": name,
            "|E| (paper)": profile.num_edges,
            "Avg Deg (paper)": profile.avg_degree,
            "Max Deg (paper)": profile.max_degree,
            "Diameter (paper)": profile.diameter,
            "|E| (synthetic)": stats.num_edges,
            "Avg Deg (syn)": round(stats.avg_degree, 2),
            "Max Deg (syn)": stats.max_degree,
            "Diameter (syn)": estimate_diameter(dataset.graph),
        })
    return rows


def test_table3_dataset_characteristics(benchmark):
    rows = once(benchmark, build_table3)
    text = render_table(rows, title="Table 3: Real graph datasets (paper) vs synthetic stand-ins")
    write_output("table3_datasets", text)

    by_name = {r["Dataset"]: r for r in rows}
    # the road network's synthetic diameter dwarfs every other dataset's
    road = by_name["wrn"]["Diameter (syn)"]
    for other in ("twitter", "uk0705", "clueweb"):
        assert road > 20 * by_name[other]["Diameter (syn)"]
    # bounded road degrees vs power-law hubs
    assert by_name["wrn"]["Max Deg (syn)"] <= 9
    assert by_name["twitter"]["Max Deg (syn)"] > 3 * by_name["twitter"]["Avg Deg (syn)"]
    # relative |E| ordering preserved: clueweb > uk > twitter > (wrn by avg degree)
    assert (
        by_name["clueweb"]["|E| (synthetic)"]
        > by_name["uk0705"]["|E| (synthetic)"]
        > by_name["twitter"]["|E| (synthetic)"]
    )
    assert by_name["wrn"]["Avg Deg (syn)"] < by_name["twitter"]["Avg Deg (syn)"]
