"""The grid-executor benchmark, runnable from the repo root::

    PYTHONPATH=src python -m benchmarks.bench_grid [--jobs N] [-o FILE]

Times the benchmark PageRank grid through ``repro.exec`` at jobs=1
(sequential, no cache), jobs=N cold, and jobs=N warm, and writes the
record to ``BENCH_grid.json`` — the same entry point as
``repro bench-grid`` (see :mod:`repro.exec.bench`).
"""

import sys

from repro.exec.bench import main

if __name__ == "__main__":
    sys.exit(main())
