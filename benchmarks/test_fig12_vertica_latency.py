"""Figure 12: Vertica vs graph systems — SSSP and PageRank on UK @32.

The paper runs SSSP (116 iterations at paper scale) and 55 iterations
of PageRank on the UK dataset over 32 machines; Vertica's temp-table
churn and join shuffling leave it far behind the native systems.
"""

from common import once, write_output

from repro.analysis import bar_chart
from repro.cluster import ClusterSpec
from repro.datasets import load_dataset
from repro.engines import make_engine, workload_for

SYSTEMS = ("V", "BV", "GL-S-R-I", "G")


def measure():
    dataset = load_dataset("uk0705", "small")
    out = {}
    for workload_name in ("sssp", "pagerank"):
        for key in SYSTEMS:
            engine = make_engine(key)
            workload = workload_for(engine, workload_name, dataset)
            result = engine.run(dataset, workload, ClusterSpec(32))
            out[(workload_name, key)] = result
    return out


def test_fig12_vertica_latency(benchmark):
    results = once(benchmark, measure)
    sections = []
    for workload_name in ("sssp", "pagerank"):
        values = {
            key: (results[(workload_name, key)].total_time
                  if results[(workload_name, key)].ok else None)
            for key in SYSTEMS
        }
        sections.append(bar_chart(
            values,
            title=f"Figure 12 ({workload_name}): UK0705 on 32 machines",
        ))
    text = "\n\n".join(sections)
    write_output("fig12_vertica_latency", text)

    for workload_name in ("sssp", "pagerank"):
        vertica = results[(workload_name, "V")]
        assert vertica.ok
        for key in ("BV", "GL-S-R-I", "G"):
            other = results[(workload_name, key)]
            if other.ok:
                # Vertica trails every native graph system, by a wide margin
                assert vertica.total_time > 1.5 * other.total_time, (
                    workload_name, key
                )
