"""Ablations for the remaining extensions: Giraph++, hash-to-min,
combiners, K-hop horizon, failure injection, weak scaling.

Each section measures a design choice the paper discusses but does not
isolate (§2.3 Giraph++, §5.6 hash-to-min, §5.8 combiners, §3.3 K = 3,
Table 1 fault tolerance, §5.12 weak scaling).
"""

from common import once, write_output

from repro.analysis import render_table
from repro.cluster import ClusterSpec, FaultPlan
from repro.core import weak_efficiency, weak_scaling_experiment
from repro.datasets import load_dataset
from repro.engines import make_engine, workload_for
from repro.engines.common import COSTS
from repro.workloads import KHop


def run(key, workload_name, dataset, machines=64, fault_plan=None):
    engine = make_engine(key)
    workload = workload_for(engine, workload_name, dataset)
    spec = ClusterSpec(machines, fault_plan=fault_plan)
    return engine.run(dataset, workload, spec)


# -- Giraph++ vs its two parents ------------------------------------------


def giraphpp_study():
    uk = load_dataset("uk0705", "small")
    rows = []
    for key in ("G", "G++", "BB"):
        for workload in ("wcc", "sssp"):
            r = run(key, workload, uk)
            rows.append({
                "System": key, "Workload": workload,
                "Execute s": round(r.execute_time, 1),
                "Total s": round(r.total_time, 1),
                "Memory GB": round(r.total_memory_bytes / 2**30, 1),
            })
    return rows


def test_ablation_giraphpp(benchmark):
    rows = once(benchmark, giraphpp_study)
    text = render_table(
        rows, title="Ablation: Giraph++ vs Giraph and Blogel-B (UK0705 @64)"
    )
    write_output("ablation_giraphpp", text)
    cell = {(r["System"], r["Workload"]): r for r in rows}
    for workload in ("wcc", "sssp"):
        # block-centric execution beats Giraph on the same substrate...
        assert cell[("G++", workload)]["Execute s"] < cell[("G", workload)]["Execute s"]
        # ...but JVM costs keep it behind Blogel-B
        assert cell[("G++", workload)]["Execute s"] > cell[("BB", workload)]["Execute s"]
    # and the memory bill is Giraph's, not Blogel's
    assert cell[("G++", "wcc")]["Memory GB"] > 2 * cell[("BB", "wcc")]["Memory GB"]


# -- hash-to-min (§5.6) ----------------------------------------------------


def hash_to_min_study():
    uk = load_dataset("uk0705", "small")
    rows = []
    for key in ("S", "S-h2m", "BB"):
        r = run(key, "wcc", uk)
        rows.append({
            "System": key,
            "Iterations": r.iterations,
            "Total s": round(r.total_time, 1) if r.ok else r.cell(),
        })
    return rows


def test_ablation_hash_to_min(benchmark):
    rows = once(benchmark, hash_to_min_study)
    text = render_table(
        rows, title="Ablation: GraphFrames hash-to-min WCC (UK0705 @64)"
    )
    write_output("ablation_hash_to_min", text)
    cell = {r["System"]: r for r in rows}
    assert cell["S-h2m"]["Iterations"] < cell["S"]["Iterations"]
    assert cell["S-h2m"]["Total s"] < 0.8 * cell["S"]["Total s"]


# -- message combiners (§5.8) ----------------------------------------------


def combiner_study():
    twitter = load_dataset("twitter", "small")
    rows = []
    original = COSTS.combine_efficiency
    try:
        for label, efficiency in (("with combiner", original),
                                  ("without combiner", 1.0)):
            COSTS.combine_efficiency = efficiency
            r = run("BV", "pagerank", twitter, machines=16)
            rows.append({
                "Configuration": label,
                "Execute s": round(r.execute_time, 1),
                "Network GB": round(r.network_bytes / 1e9, 1),
            })
    finally:
        COSTS.combine_efficiency = original
    return rows


def test_ablation_combiners(benchmark):
    rows = once(benchmark, combiner_study)
    text = render_table(
        rows, title="Ablation: message combiner, Blogel-V PageRank (Twitter @16)"
    )
    write_output("ablation_combiners", text)
    with_c, without_c = rows
    assert without_c["Network GB"] > 3 * with_c["Network GB"]
    assert without_c["Execute s"] > with_c["Execute s"]


# -- the K-hop horizon (§3.3's K = 3) ---------------------------------------


def khop_sweep():
    wrn = load_dataset("wrn", "small")
    rows = []
    for k in (1, 2, 3, 4, 6, 10):
        engine = make_engine("BV")
        workload = KHop(source=wrn.sssp_source, k=k)
        r = engine.run(wrn, workload, ClusterSpec(16))
        rows.append({
            "K": k,
            "Total s": round(r.total_time, 1),
            "Iterations": r.iterations,
        })
    return rows


def test_ablation_khop_horizon(benchmark):
    rows = once(benchmark, khop_sweep)
    text = render_table(
        rows, title="Ablation: K-hop horizon on the road network (BV @16)"
    )
    write_output("ablation_khop_horizon", text)
    times = [r["Total s"] for r in rows]
    # the query stays cheap and ~flat in K: the paper's rationale for
    # using it as the diameter-insensitive traversal
    assert max(times) < 1.3 * min(times)
    assert all(r["Iterations"] == r["K"] for r in rows)


# -- failure injection (Table 1) ---------------------------------------------


def fault_study():
    twitter = load_dataset("twitter", "small")
    rows = []
    for key in ("HD", "BV", "G", "V"):
        clean = run(key, "pagerank", twitter, machines=16)
        plan = FaultPlan(fail_times=(clean.total_time * 0.5,))
        faulty = run(key, "pagerank", twitter, machines=16, fault_plan=plan)
        rows.append({
            "System": key,
            "Mechanism": make_engine(key).fault_tolerance,
            "Clean s": round(clean.total_time, 1),
            "With failure s": round(faulty.total_time, 1),
            "Overhead": round(faulty.total_time / clean.total_time, 2),
        })
    return rows


def test_ablation_fault_tolerance(benchmark):
    rows = once(benchmark, fault_study)
    text = render_table(
        rows,
        title=("Ablation: one worker failure mid-run, PageRank on "
               "Twitter @16 (Table 1's mechanisms exercised)"),
    )
    write_output("ablation_fault_tolerance", text)
    overhead = {r["System"]: r["Overhead"] for r in rows}
    # re-execution (one shard) < checkpoint (redo since checkpoint)
    # < nothing (restart from zero)
    assert overhead["HD"] < overhead["BV"]
    assert overhead["BV"] < overhead["V"]
    assert overhead["V"] > 1.4


# -- weak scaling (§5.12's missing experiment) -------------------------------


def weak_study():
    rows = []
    for system in ("BV", "G", "HD"):
        points = weak_scaling_experiment(system, "pagerank", "twitter")
        eff = dict(weak_efficiency(points))
        for p in points:
            rows.append({
                "System": system,
                "Machines": p.machines,
                "Paper |E|": p.paper_edges,
                "Total s": round(p.time, 1) if p.result.ok else p.result.cell(),
                "Efficiency": round(eff.get(p.machines, 0.0), 2),
            })
    return rows


def test_ablation_weak_scaling(benchmark):
    rows = once(benchmark, weak_study)
    text = render_table(
        rows,
        title=("Weak scaling (constant load per machine), PageRank on "
               "Twitter-shaped data — the experiment §5.12 leaves out"),
    )
    write_output("ablation_weak_scaling", text)
    for system in ("BV", "G", "HD"):
        eff = {r["Machines"]: r["Efficiency"] for r in rows
               if r["System"] == system and r["Efficiency"]}
        # perfect weak scaling would stay at 1.0; nothing achieves it,
        # but nothing collapses either on the analytic workload
        assert eff[16] == 1.0
        assert 0.2 < eff[128] < 1.1
