"""Figure 5: the Twitter dataset across all workloads and cluster sizes."""

from common import SIZES, once, twitter_grid, write_output

from repro.analysis import render_grid
from repro.engines import GRID_SYSTEMS


def test_fig5_twitter_all_workloads(benchmark):
    grid = once(benchmark, twitter_grid)
    sections = []
    for workload in ("khop", "wcc", "sssp", "pagerank"):
        sections.append(render_grid(
            grid, workload, datasets=("twitter",), cluster_sizes=SIZES,
            systems=GRID_SYSTEMS,
            title=f"Figure 5 ({workload}): Twitter, total response seconds",
        ))
    text = "\n\n".join(sections)
    write_output("fig5_twitter_grid", text)

    # every system completes khop on twitter at every size except the
    # HaLoop SHFL cells never trigger (only 3 iterations)
    for size in SIZES:
        for system in GRID_SYSTEMS:
            result = grid.get(system, "khop", "twitter", size)
            assert result is not None and result.ok, (system, size)

    # HaLoop's shuffle bug produces SHFL cells at 64/128 for the
    # iterative workloads (§5.10)
    for workload in ("pagerank", "wcc", "sssp"):
        for size in (64, 128):
            assert grid.cell_text("HL", workload, "twitter", size) == "SHFL"

    # Blogel (V or B) wins the traversal columns; WCC can go to GraphLab
    # (Table 9 lists GL as the best parallel system for Twitter WCC)
    for workload in ("khop", "sssp"):
        for size in SIZES:
            best = grid.best_system(workload, "twitter", size)
            assert best.system in ("BV", "BB"), (workload, size, best.system)
    for size in SIZES:
        best = grid.best_system("wcc", "twitter", size)
        assert best.system in ("BV", "BB", "GL-S-A-I", "GL-S-R-I"), (size, best.system)

    # Hadoop, HaLoop, and GraphX are the slowest systems in each column
    for workload in ("wcc", "sssp", "pagerank"):
        column = [
            grid.get(s, workload, "twitter", 16) for s in GRID_SYSTEMS
        ]
        ok = sorted((r for r in column if r and r.ok), key=lambda r: r.total_time)
        slowest_three = {r.system for r in ok[-3:]}
        assert slowest_three <= {"HD", "HL", "S"}, (workload, slowest_three)
