"""Figure 3: modified Blogel-B without the HDFS round-trip.

Stock Blogel-B writes the Voronoi-partitioned dataset to HDFS and reads
it back before execution; keeping partitions in memory cut the overall
end-to-end WCC response time by ~50 % on a 16-machine cluster, almost
entirely out of the load phase.
"""

from common import once, write_output

from repro.analysis import render_table
from repro.cluster import ClusterSpec
from repro.datasets import load_dataset
from repro.engines import make_engine, workload_for


def compare():
    dataset = load_dataset("uk0705", "small")
    rows = []
    for key, label in (("BB", "Blogel-B (stock)"), ("BB*", "Blogel-B (modified)")):
        engine = make_engine(key)
        workload = workload_for(engine, "wcc", dataset)
        r = engine.run(dataset, workload, ClusterSpec(16))
        rows.append({
            "Variant": label,
            "Load": round(r.load_time, 1),
            "Execute": round(r.execute_time, 1),
            "Save": round(r.save_time, 1),
            "Total": round(r.total_time, 1),
        })
    return rows


def test_fig3_modified_blogel(benchmark):
    rows = once(benchmark, compare)
    text = render_table(
        rows,
        title="Figure 3: Blogel-B WCC on 16 machines, with/without the HDFS round-trip",
    )
    write_output("fig3_blogel_hdfs", text)

    stock, modified = rows
    # execution is untouched; the load phase shrinks dramatically
    assert abs(stock["Execute"] - modified["Execute"]) < 1.0
    assert modified["Load"] < 0.6 * stock["Load"]
    # the end-to-end reduction approaches the paper's ~50 %
    reduction = 1.0 - modified["Total"] / stock["Total"]
    assert 0.25 < reduction < 0.65
