"""Figure 13: how Vertica uses resources vs the graph systems.

Collected while computing PageRank on UK0705 over 64 machines:
(a) maximum user-CPU and I/O-wait utilization, (b) memory footprint,
(c) network usage. Vertica: small memory, heavy I/O wait, heavy
network — and all three overheads grow with the cluster.
"""

from common import once, write_output

from repro.analysis import render_table
from repro.cluster import ClusterSpec, GB
from repro.datasets import load_dataset
from repro.engines import make_engine, workload_for

SYSTEMS = ("V", "BV", "GL-S-R-I", "G", "HD")


def measure():
    dataset = load_dataset("uk0705", "small")
    rows = []
    for key in SYSTEMS:
        engine = make_engine(key)
        workload = workload_for(engine, "pagerank", dataset)
        r = engine.run(dataset, workload, ClusterSpec(64))
        rows.append({
            "System": key,
            "Max user CPU": round(r.extras["max_user_utilization"], 2),
            "Max I/O wait": round(r.extras["max_iowait_utilization"], 2),
            "Peak mem/machine GB": round(r.peak_memory_bytes / GB, 1),
            "Network GB": round(r.network_bytes / GB, 1),
            "Status": r.cell(),
        })
    return rows


def test_fig13_vertica_resource_profile(benchmark):
    rows = once(benchmark, measure)
    text = render_table(
        rows,
        title="Figure 13: resource usage, PageRank on UK0705 @64 machines",
    )
    write_output("fig13_vertica_resources", text)

    by_system = {r["System"]: r for r in rows}
    vertica = by_system["V"]
    # (a) Vertica's I/O wait dwarfs the in-memory systems'
    for key in ("BV", "GL-S-R-I", "G"):
        assert vertica["Max I/O wait"] > 3 * max(by_system[key]["Max I/O wait"], 0.01)
    # (b) its memory footprint is the smallest of all systems
    assert vertica["Peak mem/machine GB"] == min(
        r["Peak mem/machine GB"] for r in rows
    )
    # (c) it moves more bytes than the graph systems
    for key in ("BV", "GL-S-R-I"):
        assert vertica["Network GB"] > by_system[key]["Network GB"]
