"""Table 1: the feature matrix of the systems under study."""

from common import once, write_output

from repro.analysis import render_table
from repro.engines import make_engine

SYSTEMS = ("HD", "HL", "G", "GL-S-R-I", "S", "BB", "V", "FG", "BV")


def build_table1():
    rows = []
    for key in SYSTEMS:
        engine = make_engine(key)
        rows.append({
            "System": engine.display_name,
            "Memory/Disk": engine.features["memory_disk"],
            "Paradigm": engine.features["paradigm"],
            "Declarative": engine.features["declarative"],
            "Partitioning": engine.features["partitioning"],
            "Synchronization": engine.features["synchronization"],
            "Fault Tolerance": engine.features["fault_tolerance"],
            "Language": engine.language,
        })
    return rows


def test_table1_feature_matrix(benchmark):
    rows = once(benchmark, build_table1)
    text = render_table(rows, title="Table 1: Graph processing systems")
    write_output("table1_features", text)

    by_name = {r["System"]: r for r in rows}
    # the disk-based systems per the paper's Table 1
    assert by_name["Hadoop"]["Memory/Disk"] == "Disk"
    assert by_name["Vertica"]["Memory/Disk"] == "Disk"
    assert by_name["Giraph"]["Memory/Disk"] == "Memory"
    # Vertica is the only declarative system
    declaratives = [r["System"] for r in rows if "yes" in r["Declarative"]]
    assert declaratives == ["Vertica"]
    # Blogel-B is the block-centric representative
    assert "Block" in by_name["Blogel-B"]["Paradigm"]
    # GraphLab is the only (a)synchronous one
    asyncs = [r["System"] for r in rows if "(A)" in r["Synchronization"]]
    assert asyncs == ["GraphLab"]
