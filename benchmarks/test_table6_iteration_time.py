"""Table 6: per-iteration time of Giraph and GraphX on WRN (SSSP, WCC).

Paper values (seconds per iteration):

               Giraph            GraphX
             SSSP   WCC       SSSP   WCC
    16 mach     6   OOM        120    420
    32 mach     3   3.2         17     30

"For SSSP and WCC to finish in 24 hours, the iteration time should be
2.4 and 1.8 respectively" — the reason those runs time out.
"""

import pytest

from common import once, write_output

from repro.analysis import render_table
from repro.cluster import ClusterSpec
from repro.datasets import load_dataset
from repro.engines import make_engine, workload_for

PAPER = {
    ("G", "sssp", 16): 6.0, ("G", "wcc", 16): None,   # OOM
    ("G", "sssp", 32): 3.0, ("G", "wcc", 32): 3.2,
    ("S", "sssp", 16): 120.0, ("S", "wcc", 16): 420.0,
    ("S", "sssp", 32): 17.0, ("S", "wcc", 32): 30.0,
}


def measure():
    dataset = load_dataset("wrn", "small")
    rows = []
    for machines in (16, 32):
        row = {"Cluster": machines}
        for system in ("G", "S"):
            for workload_name in ("sssp", "wcc"):
                engine = make_engine(system)
                workload = workload_for(engine, workload_name, dataset)
                # lift the timeout: the measurement is per-iteration cost
                result = engine.run(
                    dataset, workload, ClusterSpec(machines, timeout_seconds=1e15)
                )
                key = f"{engine.display_name} {workload_name}"
                if result.ok or result.per_iteration_time > 0:
                    row[key] = round(result.per_iteration_time, 1)
                    if not result.ok:
                        row[f"{key} note"] = str(result.failure)
                else:
                    row[key] = str(result.failure)
                paper = PAPER[(system, workload_name, machines)]
                row[f"{key} (paper)"] = paper if paper is not None else "OOM"
        rows.append(row)
    return rows


def test_table6_per_iteration_time(benchmark):
    rows = once(benchmark, measure)
    text = render_table(
        rows,
        title=("Table 6: seconds per iteration on WRN "
               "(24h budget needs <= 2.4 for SSSP, <= 1.8 for WCC)"),
    )
    write_output("table6_iteration_time", text)

    by_cluster = {r["Cluster"]: r for r in rows}
    g16 = by_cluster[16]["Giraph sssp"]
    g32 = by_cluster[32]["Giraph sssp"]
    # Giraph's per-iteration cost matches the paper's anchor within ~50%
    assert 4.0 < g16 < 9.0
    assert 2.0 < g32 < 4.5
    # ...which is above the 2.4 s/iteration budget, hence the TO cells
    assert g16 > 2.4 and g32 > 2.4
    # Giraph WCC at 16 machines OOMs, exactly like the paper's empty cell
    assert by_cluster[16]["Giraph wcc"] == "OOM"
    # GraphX is an order of magnitude slower per iteration than Giraph
    assert by_cluster[16]["GraphX sssp"] > 5 * g16
    assert by_cluster[32]["GraphX sssp"] > 5 * g32
    # and both GraphX workloads get cheaper per iteration at 32 machines
    assert by_cluster[32]["GraphX sssp"] < by_cluster[16]["GraphX sssp"]
    assert by_cluster[32]["GraphX wcc"] < by_cluster[16]["GraphX wcc"]
