#!/usr/bin/env python
"""Scenario: a failure drill — what one dead machine costs each system.

Table 1 catalogues each system's fault-tolerance mechanism but the
paper never pulls the plug. This example does: it schedules a worker
failure halfway through a PageRank run on every mechanism class and
compares the bill, then shows the checkpoint-frequency trade-off (dense
checkpoints cost steady overhead but shrink the recovery).

Run:  python examples/failure_drill.py
"""

from repro import load_dataset
from repro.analysis import render_table
from repro.cluster import ClusterSpec, FaultPlan
from repro.engines import make_engine, workload_for

SYSTEMS = ("HD", "G", "BV", "GL-S-R-I", "V")


def run(key, dataset, machines=16, fault_plan=None):
    engine = make_engine(key)
    workload = workload_for(engine, "pagerank", dataset)
    return engine.run(dataset, workload,
                      ClusterSpec(machines, fault_plan=fault_plan))


def main() -> None:
    dataset = load_dataset("twitter", "small")

    rows = []
    for key in SYSTEMS:
        engine = make_engine(key)
        clean = run(key, dataset)
        plan = FaultPlan(fail_times=(clean.total_time * 0.5,))
        faulty = run(key, dataset, fault_plan=plan)
        rows.append({
            "System": engine.display_name,
            "Mechanism": engine.fault_tolerance,
            "Clean s": round(clean.total_time, 1),
            "1 failure s": round(faulty.total_time, 1),
            "Overhead": f"{faulty.total_time / clean.total_time:.2f}x",
            "Checkpoints": int(faulty.extras.get("checkpoints", 0)),
        })
    print(render_table(
        rows, title="One worker dies mid-run (PageRank, Twitter, 16 machines)"
    ))
    print(
        "\nReading: MapReduce re-executes one shard (cheap); BSP systems"
        "\nreplay everything since the last global checkpoint; Vertica has"
        "\nno mechanism at all - the query restarts from zero.\n"
    )

    # The checkpoint-frequency trade-off for a BSP system.
    clean = run("BV", dataset)
    fail_late = (clean.total_time * 0.85,)
    rows = []
    for interval in (2, 5, 10, 20, 40):
        plan = FaultPlan(fail_times=fail_late, checkpoint_interval=interval)
        faulty = run("BV", dataset, fault_plan=plan)
        no_fail = run("BV", dataset,
                      fault_plan=FaultPlan(checkpoint_interval=interval))
        rows.append({
            "Checkpoint every": f"{interval} supersteps",
            "Steady overhead s": round(no_fail.total_time - clean.total_time, 1),
            "Recovery cost s": round(faulty.total_time - no_fail.total_time, 1),
            "Total with failure s": round(faulty.total_time, 1),
        })
    print(render_table(
        rows,
        title="Checkpoint frequency trade-off (Blogel-V, failure at 85%)",
    ))
    print(
        "\nDense checkpoints pay a steady tax but bound the work lost to a"
        "\nfailure; sparse ones gamble the whole run on a quiet cluster."
    )


if __name__ == "__main__":
    main()
