#!/usr/bin/env python
"""Scenario: how partitioning strategy shapes cost and memory.

Re-enacts §4.4.1 and §5.4: build every partitioner the library has on
each dataset, compare replication factors, cut fractions, and balance,
and show why GraphLab's Auto mode zig-zags with cluster size.

Run:  python examples/partitioning_study.py
"""

from repro import load_dataset
from repro.analysis import render_table
from repro.partitioning import (
    auto_method_for,
    auto_partition,
    grid_partition,
    oblivious_partition,
    random_edge_partition,
    random_vertex_partition,
    voronoi_partition,
)


def vertex_cut_table(dataset_name: str, machines: int):
    graph = load_dataset(dataset_name, "small").graph
    rows = []
    makers = [("random", random_edge_partition), ("oblivious", oblivious_partition)]
    try:
        grid_partition(graph, machines)
        makers.insert(1, ("grid", grid_partition))
    except ValueError:
        pass
    for name, maker in makers:
        p = maker(graph, machines)
        rows.append({
            "Scheme": name,
            "Replication": round(p.replication_factor(), 2),
            "Balance skew": round(p.balance_skew(), 3),
        })
    return rows


def main() -> None:
    for dataset_name in ("twitter", "uk0705", "wrn"):
        print("=" * 64)
        print(f"vertex-cut schemes on {dataset_name}, 16 machines")
        print(render_table(vertex_cut_table(dataset_name, 16)))
        print()

    print("=" * 64)
    print("GraphLab Auto's scheme per cluster size (§4.4.1):")
    for machines in (16, 32, 64, 128):
        print(f"  {machines:>4d} machines -> {auto_method_for(machines)}")
    print(
        "\nGrid needs a near-square machine count (16 = 4x4, 64 = 8x8);"
        "\n32 and 128 fall back to the slower Oblivious greedy - the"
        "\nreason GraphLab's load time gets *worse* on bigger clusters."
    )

    print("\n" + "=" * 64)
    print("edge-cut vs block partitioning on the road network (16 machines):")
    graph = load_dataset("wrn", "small").graph
    edge_cut = random_vertex_partition(graph, 16)
    blocks = voronoi_partition(graph, 16)
    print(render_table([
        {
            "Scheme": "random edge-cut (Giraph/Blogel-V)",
            "Machine cut": round(edge_cut.cut_fraction(), 3),
            "Blocks": "-",
        },
        {
            "Scheme": "Graph Voronoi blocks (Blogel-B)",
            "Machine cut": round(blocks.cut_fraction(), 3),
            "Blocks": blocks.num_blocks,
        },
    ]))
    print(
        "\nSpatial Voronoi blocks keep almost every road edge internal,"
        "\nwhich is exactly why block-centric execution wins reachability"
        "\nworkloads (when the partitioner itself survives, §5.1)."
    )


if __name__ == "__main__":
    main()
