#!/usr/bin/env python
"""Scenario: is a cluster worth it? The COST experiment, interactive.

COST ("Configuration that Outperforms a Single Thread", §5.13) asks the
uncomfortable question: does the 16-machine cluster actually beat one
good thread on a big machine? This example reruns the comparison per
workload and dataset, prints the verdicts, and shows the scaling curve
of the best parallel system so the crossover is visible.

Run:  python examples/cost_of_parallelism.py
"""

from repro import load_dataset
from repro.analysis import render_table
from repro.core import cost_experiment, run_cell


def scaling_of(system: str, workload: str, dataset_name: str):
    dataset = load_dataset(dataset_name, "small")
    points = {}
    for machines in (16, 32, 64, 128):
        result = run_cell(system, workload, dataset, machines)
        points[machines] = round(result.total_time, 1) if result.ok else result.cell()
    return points


def main() -> None:
    rows = cost_experiment(
        datasets=("twitter", "uk0705", "wrn"),
        workloads=("pagerank", "sssp", "wcc"),
    )
    table = []
    for row in rows:
        verdict = (
            "cluster wins" if row.cost and row.cost > 1 else "single thread wins"
        )
        table.append({
            "Dataset": row.dataset,
            "Workload": row.workload,
            "Single thread s": round(row.single_thread_seconds, 1),
            "Best parallel s": round(row.best_parallel_seconds or 0, 1),
            "Best system": row.best_parallel_system or "-",
            "COST (S/P)": round(row.cost, 3) if row.cost else "-",
            "Verdict": verdict,
        })
    print(render_table(table, title="The COST experiment (16-machine clusters)"))

    print(
        "\nReading: PageRank parallelizes (COST 2-3), but road-network"
        "\ntraversals are ~25-30x slower on the cluster than on one thread"
        "\n- 36,000+ BSP barriers cost more than the computation itself.\n"
    )

    worst = min((r for r in rows if r.cost), key=lambda r: r.cost)
    print(
        f"worst case: {worst.workload} on {worst.dataset} "
        f"(COST {worst.cost:.3f}); scaling of {worst.best_parallel_system}:"
    )
    points = scaling_of(worst.best_parallel_system, worst.workload, worst.dataset)
    for machines, value in points.items():
        print(f"  {machines:>4d} machines: {value}")
    print(
        "\nMore machines do not rescue an O(diameter) synchronization "
        "pattern."
    )


if __name__ == "__main__":
    main()
