#!/usr/bin/env python
"""Quickstart: run one experiment cell and read the result.

This is the smallest useful program against the public API: pick a
system by its figure abbreviation, a workload, a dataset, and a cluster
size — get back the paper's four metrics plus the actual computed
answer (which is exact: the simulation charges costs, it does not fake
results).

Run:  python examples/quickstart.py
"""

from repro import load_dataset, run_cell
from repro.workloads import reference_pagerank

import numpy as np


def main() -> None:
    dataset = load_dataset("twitter", "small")
    print(f"dataset: {dataset}")

    # Blogel-V (the paper's overall winner), PageRank, 16 machines.
    result = run_cell("BV", "pagerank", dataset, cluster_size=16)
    print(f"\n{result}")
    print(f"  load    : {result.load_time:8.1f} s")
    print(f"  execute : {result.execute_time:8.1f} s")
    print(f"  save    : {result.save_time:8.1f} s")
    print(f"  total   : {result.total_time:8.1f} s "
          f"({result.iterations} iterations)")
    print(f"  network : {result.network_bytes / 1e9:8.1f} GB moved")
    print(f"  memory  : {result.total_memory_bytes / 2**30:8.1f} GiB "
          f"across the cluster")

    # The answer is the true PageRank vector.
    expected = reference_pagerank(dataset.graph, tolerance=1e-5)
    top = np.argsort(result.answer)[::-1][:5]
    print("\n  top-5 vertices by rank:", top.tolist())
    correlation = np.corrcoef(result.answer, expected)[0, 1]
    print(f"  correlation with reference ranks: {correlation:.6f}")

    # Failures are first-class results, not exceptions: ask GraphLab to
    # load the road network on 16 machines (it cannot, §5.2).
    wrn = load_dataset("wrn", "small")
    failed = run_cell("GL-S-R-I", "pagerank", wrn, cluster_size=16)
    print(f"\n{failed}")
    print(f"  cell: {failed.cell()}  ({failed.failure_detail})")


if __name__ == "__main__":
    main()
