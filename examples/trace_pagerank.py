#!/usr/bin/env python
"""Trace one PageRank run: spans, metrics, journal, and the exporters.

The paper's evaluation was log-driven (§4.2): per-second resource
series on every machine, analysed offline. `repro.obs` gives each
simulated run the same story as one deterministic journal — a tree of
spans on the simulated clock plus a typed metrics registry. This
example records a Blogel-V PageRank cell, prints the terminal timeline,
compares the superstep shape against a block-centric engine, and writes
the Chrome trace + per-superstep CSV next to this script's output dir.

Run:  python examples/trace_pagerank.py
"""

from pathlib import Path

from repro import load_dataset, run_cell
from repro.obs import render_summary, superstep_rows, write_chrome, \
    write_superstep_csv

OUT_DIR = Path("trace_pagerank_out")


def main() -> None:
    dataset = load_dataset("twitter", "small")

    # Every run records spans and metrics; nothing to switch on.
    result = run_cell("BV", "pagerank", dataset, cluster_size=16)
    journal = result.observation.journal()

    print(render_summary(journal, top=5))

    # The registry behind result.extras: typed counters and histograms.
    print(f"\nmessages sent : {result.metrics.value('messages_sent'):,.0f}")
    print(f"bytes shuffled: {result.metrics.value('bytes_shuffled') / 1e9:.1f} GB")
    seconds = result.metrics.histogram("superstep_seconds")
    print(f"superstep time: mean {seconds.mean:.2f} s over {seconds.count} steps")

    # Per-superstep series — the rows behind Table 6 / Figure 10.
    rows = superstep_rows(journal)
    print("\nfirst three supersteps:")
    for row in rows[:3]:
        print(f"  iter {row['iteration']:>2}: {row['duration_s']:6.2f} s, "
              f"{row['messages']:>8,} messages, "
              f"{row['bytes_shuffled'] / 1e9:6.2f} GB shuffled")

    # A block-centric engine shows a different span shape: WCC on
    # Blogel-B nests an in-block fixpoint inside every outer round
    # (PageRank stays vertex-centric in its step 2, §3.1.2).
    block = run_cell("BB", "wcc", dataset, cluster_size=16)
    block_journal = block.observation.journal()
    locals_per_round = [
        span["args"].get("local_steps", 0)
        for span in block_journal.supersteps()
    ]
    print(f"\nBlogel-B WCC runs {len(locals_per_round)} block-centric "
          f"rounds, each an in-block fixpoint of up to "
          f"{max(locals_per_round)} local steps")

    OUT_DIR.mkdir(exist_ok=True)
    journal.write(OUT_DIR / "pagerank_bv.jsonl")
    events = write_chrome(journal, OUT_DIR / "pagerank_bv_chrome.json")
    steps = write_superstep_csv(journal, OUT_DIR / "pagerank_bv_steps.csv")
    print(f"\nwrote {OUT_DIR}/: journal, Chrome trace ({events} events — "
          f"load it in Perfetto), CSV ({steps} rows)")


if __name__ == "__main__":
    main()
