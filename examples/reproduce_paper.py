#!/usr/bin/env python
"""Reproduce the whole paper in one run.

Regenerates the evaluation end to end — the four result grids, the
COST table, the findings checklist — writes a Markdown report plus the
raw JSONL log, and prints the summary. This is the driver a referee
would run; the per-table/figure details live in ``benchmarks/``.

Run:  python examples/reproduce_paper.py [output-dir]
      (takes a few minutes; default output dir: ./paper_reproduction)
"""

import sys
import time
from pathlib import Path

from repro import paper_grid
from repro.analysis import grid_report, render_grid, write_log
from repro.analysis.tables import render_table
from repro.core import cost_experiment, verify_all_findings
from repro.engines import systems_for_workload

DATASETS = ("twitter", "uk0705", "wrn")
SIZES = (16, 32, 64, 128)


def main() -> int:
    out_dir = Path(sys.argv[1] if len(sys.argv) > 1 else "paper_reproduction")
    out_dir.mkdir(parents=True, exist_ok=True)
    started = time.time()
    report_parts = ["# Full reproduction run\n"]

    # Figures 6-9: the four result grids.
    for workload in ("pagerank", "khop", "sssp", "wcc"):
        print(f"running the {workload} grid ...")
        grid = paper_grid(workload, datasets=DATASETS, cluster_sizes=SIZES)
        write_log(grid.cells.values(), out_dir / "runs.jsonl")
        text = render_grid(
            grid, workload, DATASETS, SIZES, systems_for_workload(workload),
            title=f"{workload}: total response seconds",
        )
        print(text, "\n")
        report_parts.append(grid_report(grid, title=f"{workload} grid"))

    # Table 9: the COST experiment.
    print("running the COST experiment ...")
    cost_rows = cost_experiment(datasets=DATASETS,
                                workloads=("pagerank", "sssp", "wcc"))
    cost_table = render_table(
        [{
            "dataset": r.dataset, "workload": r.workload,
            "single thread s": round(r.single_thread_seconds, 1),
            "best parallel s": round(r.best_parallel_seconds or 0, 1),
            "winner": r.best_parallel_system or "-",
            "COST": round(r.cost, 3) if r.cost else "-",
        } for r in cost_rows],
        title="Table 9: the COST experiment",
    )
    print(cost_table, "\n")
    report_parts.append(cost_table)

    # The findings checklist.
    print("verifying the paper's findings ...")
    findings = verify_all_findings()
    findings_table = render_table(
        [{
            "finding": f.key, "section": f.section,
            "verdict": "SUPPORTED" if f.supported else "NOT SUPPORTED",
        } for f in findings],
        title="The paper's major findings",
    )
    print(findings_table)
    report_parts.append(findings_table)

    report_path = out_dir / "report.md"
    report_path.write_text("\n\n".join(report_parts) + "\n", encoding="utf-8")
    elapsed = time.time() - started
    supported = sum(1 for f in findings if f.supported)
    print(
        f"\ndone in {elapsed:.0f}s: {supported}/{len(findings)} findings "
        f"supported; report at {report_path}, raw log at "
        f"{out_dir / 'runs.jsonl'}"
    )
    return 0 if supported == len(findings) else 1


if __name__ == "__main__":
    sys.exit(main())
