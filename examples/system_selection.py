#!/usr/bin/env python
"""Scenario: choosing a graph system for a given workload mix.

The paper's central practical message is that "the best system varies
according to workload and particular data graph" (§7). This example
plays the role of an engineer sizing a deployment: given a dataset
shape and a workload mix, run the candidate systems on a 32-machine
cluster and print a recommendation table with the evidence.

Run:  python examples/system_selection.py
"""

from repro import load_dataset
from repro.analysis import render_table
from repro.core import run_cell

CANDIDATES = ("BV", "BB", "G", "GL-S-R-I", "GL-S-A-T", "HD", "S", "FG")
CLUSTER = 32


def evaluate(dataset_name: str, workload_name: str):
    dataset = load_dataset(dataset_name, "small")
    rows = []
    for system in CANDIDATES:
        result = run_cell(system, workload_name, dataset, CLUSTER)
        rows.append({
            "System": system,
            "Outcome": result.cell(),
            "Load s": round(result.load_time, 1),
            "Execute s": round(result.execute_time, 1),
            "Total s": round(result.total_time, 1) if result.ok else "-",
        })
    ok = [r for r in rows if r["Outcome"] not in ("OOM", "TO", "MPI", "SHFL")]
    winner = min(ok, key=lambda r: r["Total s"])["System"] if ok else None
    return rows, winner


def main() -> None:
    scenarios = [
        ("twitter", "pagerank",
         "Social-network influence scoring (iterative analytics)"),
        ("twitter", "khop",
         "Friends-of-friends queries (bounded traversal)"),
        ("wrn", "sssp",
         "Road-network routing (unbounded traversal, huge diameter)"),
        ("uk0705", "wcc",
         "Web-graph deduplication (component discovery)"),
    ]
    for dataset_name, workload_name, description in scenarios:
        rows, winner = evaluate(dataset_name, workload_name)
        print("=" * 72)
        print(f"{description}\n  dataset={dataset_name}, "
              f"workload={workload_name}, cluster={CLUSTER} machines")
        print(render_table(rows))
        if winner:
            print(f"\n  -> recommendation: {winner}")
        else:
            print("\n  -> no evaluated system completes this workload at "
                  f"{CLUSTER} machines; consider more memory or a "
                  "single big machine (see the COST experiment)")
        print()


if __name__ == "__main__":
    main()
